// Substrate microbenchmarks (google-benchmark): throughput of the pieces
// the tuning loop is built from — interpreter, inliner, optimizer pipeline,
// I-cache probes, whole-suite evaluation, and GA machinery.

#include <benchmark/benchmark.h>

#include "bytecode/size_estimator.hpp"
#include "bytecode/verifier.hpp"
#include "ga/ga.hpp"
#include "heuristics/heuristic.hpp"
#include "opt/optimizer.hpp"
#include "runtime/icache.hpp"
#include "runtime/interpreter.hpp"
#include "support/rng.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/parameter_space.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace ith;

// A plain identity code source for raw interpreter throughput.
class RawSource final : public rt::CodeSource {
 public:
  explicit RawSource(const bc::Program& prog) : prog_(prog), compiled_(prog.num_methods()) {}
  const rt::CompiledMethod& invoke(bc::MethodId id) override {
    auto& slot = compiled_[static_cast<std::size_t>(id)];
    if (!slot) {
      slot = std::make_unique<rt::CompiledMethod>();
      slot->body = prog_.method(id);
      slot->tier = rt::Tier::kOpt;
      slot->method_id = id;
      slot->code_base = 0x1000 + 0x10000 * static_cast<std::uint64_t>(id);
      slot->finalize();
    }
    return *slot;
  }

 private:
  const bc::Program& prog_;
  std::vector<std::unique_ptr<rt::CompiledMethod>> compiled_;
};

void BM_InterpreterThroughput(benchmark::State& state) {
  const wl::Workload w = wl::make_workload("compress");
  const rt::MachineModel machine = rt::pentium4_model();
  RawSource source(w.program);
  rt::Interpreter interp(w.program, machine, source, nullptr);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    interp.reset_globals();
    const rt::ExecStats r = interp.run();
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["bc_instr/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                    benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

void BM_InterpreterWithICache(benchmark::State& state) {
  const wl::Workload w = wl::make_workload("compress");
  const rt::MachineModel machine = rt::pentium4_model();
  RawSource source(w.program);
  rt::ICache icache(machine.icache_bytes, machine.icache_line_bytes, machine.icache_assoc);
  rt::Interpreter interp(w.program, machine, source, &icache);
  for (auto _ : state) {
    interp.reset_globals();
    benchmark::DoNotOptimize(interp.run().cycles);
  }
}
BENCHMARK(BM_InterpreterWithICache);

void BM_ICacheProbe(benchmark::State& state) {
  rt::ICache cache(8192, 64, 4);
  Pcg32 rng(1);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.range(0, 1 << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.probe(addrs[i++ & 4095]));
  }
}
BENCHMARK(BM_ICacheProbe);

void BM_InlinerOnWorkload(benchmark::State& state) {
  const wl::Workload w = wl::make_workload("jess");
  heur::JikesHeuristic h;
  const opt::Inliner inliner(w.program, h);
  for (auto _ : state) {
    for (std::size_t m = 0; m < w.program.num_methods(); ++m) {
      benchmark::DoNotOptimize(inliner.run(static_cast<bc::MethodId>(m)).method.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.program.num_methods()));
}
BENCHMARK(BM_InlinerOnWorkload);

void BM_OptimizerPipeline(benchmark::State& state) {
  const wl::Workload w = wl::make_workload("jess");
  heur::JikesHeuristic h;
  const opt::Optimizer optimizer(w.program, h);
  for (auto _ : state) {
    for (std::size_t m = 0; m < w.program.num_methods(); ++m) {
      benchmark::DoNotOptimize(optimizer.optimize(static_cast<bc::MethodId>(m)).body.method.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.program.num_methods()));
}
BENCHMARK(BM_OptimizerPipeline);

void BM_VmFullRun(benchmark::State& state) {
  const wl::Workload w = wl::make_workload("raytrace");
  const rt::MachineModel machine = rt::pentium4_model();
  for (auto _ : state) {
    heur::JikesHeuristic h;
    vm::VirtualMachine m(w.program, machine, h, vm::VmConfig{});
    benchmark::DoNotOptimize(m.run(2).total_cycles);
  }
}
BENCHMARK(BM_VmFullRun);

void BM_SuiteEvaluation(benchmark::State& state) {
  tuner::EvalConfig cfg;
  cfg.scenario = vm::Scenario::kOpt;
  for (auto _ : state) {
    state.PauseTiming();
    tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), cfg);  // cold cache each round
    state.ResumeTiming();
    benchmark::DoNotOptimize(eval.evaluate(heur::default_params())->size());
  }
}
BENCHMARK(BM_SuiteEvaluation)->Unit(benchmark::kMillisecond);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl::make_workload("pseudojbb").program.num_methods());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

void BM_GaGenerationStep(benchmark::State& state) {
  // Cheap synthetic fitness isolates the GA's own bookkeeping cost.
  const ga::GenomeSpace space = tuner::inline_param_space(true);
  auto fitness = [](const ga::Genome& g) {
    double s = 0;
    for (int v : g) s += v * 0.001;
    return s;
  };
  for (auto _ : state) {
    ga::GaConfig cfg;
    cfg.generations = 10;
    cfg.memoize = false;
    ga::GeneticAlgorithm algo(space, fitness, cfg);
    benchmark::DoNotOptimize(algo.run().best_fitness);
  }
}
BENCHMARK(BM_GaGenerationStep);

void BM_Verifier(benchmark::State& state) {
  const wl::Workload w = wl::make_workload("antlr");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc::verify_program(w.program).size());
  }
}
BENCHMARK(BM_Verifier)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
