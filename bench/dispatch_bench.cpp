#include "dispatch_bench.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "fuzz/generator.hpp"
#include "runtime/icache.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "serving/workloads.hpp"
#include "support/error.hpp"
#include "workloads/suite.hpp"

namespace ith::bench {
namespace {

/// Compiles nothing: every method runs as-is at the Opt tier with zero
/// compile accounting — the measurement loop then times pure dispatch, not
/// the tiering policy. Bodies stay alive for the source's lifetime, which
/// spans every engine constructed over it (the CodeSource contract).
class PlainSource final : public rt::CodeSource {
 public:
  explicit PlainSource(const bc::Program& prog) : prog_(prog), compiled_(prog.num_methods()) {}

  const rt::CompiledMethod& invoke(bc::MethodId id) override {
    auto& slot = compiled_[static_cast<std::size_t>(id)];
    if (!slot) {
      slot = std::make_unique<rt::CompiledMethod>();
      slot->body = prog_.method(id);
      slot->tier = rt::Tier::kOpt;
      slot->method_id = id;
      slot->code_base = 0x1000 + 0x10000 * static_cast<std::uint64_t>(id);
      slot->origin.resize(slot->body.size());
      for (std::size_t pc = 0; pc < slot->body.size(); ++pc) {
        slot->origin[pc] = {id, static_cast<std::int32_t>(pc)};
      }
      slot->finalize();
    }
    return *slot;
  }

 private:
  const bc::Program& prog_;
  std::vector<std::unique_ptr<rt::CompiledMethod>> compiled_;
};

struct NamedProgram {
  std::string name;
  bc::Program program;
};

/// Suite subset chosen for dispatch diversity: tight arithmetic loops
/// (compress), global-heavy lookups (db), call-dense recursion (raytrace),
/// branchy scanning (jack) — plus the three serving workloads in batch mode
/// (the latency tier that feels dispatch speed most directly; batch mode
/// drives the same per-request handlers over the deterministic request
/// tape, so it runs as a plain program) and one generator program
/// exercising the opcode-set corners none of the structured workloads
/// reach.
std::vector<NamedProgram> dispatch_programs(const DispatchBenchConfig& config) {
  std::vector<NamedProgram> out;
  for (const char* name : {"compress", "db", "raytrace", "jack"}) {
    out.push_back({name, wl::make_workload(name, config.run_scale).program});
  }
  for (const std::string& name : serving::serving_names()) {
    out.push_back({name, serving::make_serving_workload(name, serving::ServingMode::kBatch).program});
  }
  fuzz::GeneratorSpec spec;
  spec.seed = config.fuzz_seed;
  spec.max_methods = 10;
  spec.max_stmts = 12;
  spec.max_fuel = 9;
  out.push_back({"adversarial", fuzz::generate_adversarial(spec)});
  return out;
}

/// One engine variant held live across the whole measurement: its source,
/// icache and interpreter outlive the interleaved timing rounds below.
struct EngineBench {
  std::unique_ptr<PlainSource> source;
  std::unique_ptr<rt::ICache> icache;
  std::unique_ptr<rt::Interpreter> interp;
  rt::ExecStats cold;  ///< stats of the cold (warm-up) run, fresh icache
  double best_seconds = std::numeric_limits<double>::infinity();
};

EngineBench setup_engine(const bc::Program& prog, const rt::MachineModel& machine,
                         rt::EngineKind kind, rt::FusionPolicy fusion,
                         const DispatchBenchConfig& config) {
  EngineBench b;
  b.source = std::make_unique<PlainSource>(prog);
  if (config.with_icache) {
    b.icache = std::make_unique<rt::ICache>(machine.icache_bytes, machine.icache_line_bytes,
                                            machine.icache_assoc);
  }
  rt::InterpreterOptions opts;
  opts.engine = kind;
  opts.fusion = fusion;
  b.interp = std::make_unique<rt::Interpreter>(prog, machine, *b.source, b.icache.get(), opts);

  // Cold run: pays predecoding, arena growth, and icache fill once, and
  // yields the stats used for the cross-engine equality check.
  b.cold = b.interp->run();
  return b;
}

/// One steady-state timing round. The best (minimum) across rounds is the
/// reported time, rejecting transient interference.
void time_round(EngineBench& b) {
  b.interp->reset_globals();
  const auto t0 = std::chrono::steady_clock::now();
  const rt::ExecStats stats = b.interp->run();
  const auto t1 = std::chrono::steady_clock::now();
  ITH_CHECK(stats.instructions == b.cold.instructions,
            "dispatch bench: instruction count drifted across repeats");
  b.best_seconds = std::min(b.best_seconds, std::chrono::duration<double>(t1 - t0).count());
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

std::vector<std::string> dispatch_workload_names(const DispatchBenchConfig& config) {
  std::vector<std::string> names;
  for (const NamedProgram& np : dispatch_programs(config)) names.push_back(np.name);
  return names;
}

std::vector<DispatchMeasurement> run_dispatch_bench(const DispatchBenchConfig& config) {
  ITH_CHECK(config.repeats >= 1, "dispatch bench needs at least one repeat");
  const rt::MachineModel machine = rt::pentium4_model();
  std::vector<DispatchMeasurement> out;
  for (const NamedProgram& np : dispatch_programs(config)) {
    EngineBench fast = setup_engine(np.program, machine, rt::EngineKind::kFast,
                                    rt::default_fusion_policy(), config);
    EngineBench nofuse = setup_engine(np.program, machine, rt::EngineKind::kFast,
                                      rt::FusionPolicy::kOff, config);
    EngineBench ref = setup_engine(np.program, machine, rt::EngineKind::kReference,
                                   rt::FusionPolicy::kOff, config);
    if (!(fast.cold == ref.cold) || !(nofuse.cold == ref.cold)) {
      throw Error("dispatch bench: engines disagree on '" + np.name +
                  "' — refusing to time non-equivalent executions");
    }
    // Timing rounds are interleaved across the three variants instead of
    // exhausting one engine's repeats before the next: when the host's
    // effective speed drifts mid-benchmark (CPU steal on a shared core,
    // frequency changes), every variant samples the same slow and fast
    // windows, so the reported speedup RATIOS stay stable even when the
    // absolute throughput numbers move.
    for (int r = 0; r < config.repeats; ++r) {
      time_round(fast);
      time_round(nofuse);
      time_round(ref);
    }
    const struct {
      const EngineBench* t;
      const char* engine;
    } variants[] = {{&fast, "fast"}, {&nofuse, "fast-nofuse"}, {&ref, "reference"}};
    for (const auto& v : variants) {
      DispatchMeasurement m;
      m.workload = np.name;
      m.engine = v.engine;
      m.instructions = v.t->cold.instructions;
      m.sim_cycles = v.t->cold.cycles;
      m.best_seconds = v.t->best_seconds;
      m.insns_per_sec = static_cast<double>(v.t->cold.instructions) / v.t->best_seconds;
      m.ns_per_insn = v.t->best_seconds * 1e9 / static_cast<double>(v.t->cold.instructions);
      out.push_back(std::move(m));
    }
  }
  return out;
}

double geomean_ratio(const std::vector<DispatchMeasurement>& ms, const std::string& num,
                     const std::string& den) {
  double log_sum = 0.0;
  int n = 0;
  for (const DispatchMeasurement& m : ms) {
    if (m.engine != num) continue;
    for (const DispatchMeasurement& d : ms) {
      if (d.engine == den && d.workload == m.workload) {
        log_sum += std::log(m.insns_per_sec / d.insns_per_sec);
        ++n;
        break;
      }
    }
  }
  return n == 0 ? 1.0 : std::exp(log_sum / n);
}

double geomean_speedup(const std::vector<DispatchMeasurement>& ms) {
  return geomean_ratio(ms, "fast", "reference");
}

void write_bench_json(std::ostream& os, const DispatchBenchConfig& config,
                      const std::vector<DispatchMeasurement>& ms) {
  os << "{\n";
  os << "  \"benchmark\": \"interpreter_dispatch\",\n";
  os << "  \"unit\": \"interpreted instructions per wall-clock second\",\n";
  os << "  \"config\": {\"repeats\": " << config.repeats << ", \"run_scale\": "
     << format_double(config.run_scale, 2) << ", \"fuzz_seed\": " << config.fuzz_seed
     << ", \"icache\": " << (config.with_icache ? "true" : "false") << ", \"fusion\": \""
     << rt::fusion_policy_name(rt::default_fusion_policy()) << "\"},\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const DispatchMeasurement& m = ms[i];
    os << "    {\"workload\": \"" << m.workload << "\", \"engine\": \"" << m.engine
       << "\", \"instructions\": " << m.instructions << ", \"sim_cycles\": " << m.sim_cycles
       << ", \"best_seconds\": " << format_double(m.best_seconds, 6)
       << ", \"insns_per_sec\": " << format_double(m.insns_per_sec, 0)
       << ", \"ns_per_insn\": " << format_double(m.ns_per_insn, 3) << "}"
       << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"geomean_speedup_fast_over_reference\": " << format_double(geomean_speedup(ms), 3)
     << ",\n";
  os << "  \"geomean_speedup_unfused_over_reference\": "
     << format_double(geomean_ratio(ms, "fast-nofuse", "reference"), 3) << ",\n";
  os << "  \"geomean_speedup_fast_over_unfused\": "
     << format_double(geomean_ratio(ms, "fast", "fast-nofuse"), 3) << "\n";
  os << "}\n";
}

void print_dispatch_table(std::ostream& os, const std::vector<DispatchMeasurement>& ms) {
  os << "workload      engine     instructions    best ms   Minsn/s   ns/insn\n";
  os << "--------------------------------------------------------------------\n";
  for (const DispatchMeasurement& m : ms) {
    os << m.workload;
    for (std::size_t p = m.workload.size(); p < 14; ++p) os << ' ';
    os << m.engine;
    for (std::size_t p = m.engine.size(); p < 11; ++p) os << ' ';
    std::string cols = format_double(static_cast<double>(m.instructions), 0);
    for (std::size_t p = cols.size(); p < 12; ++p) os << ' ';
    os << cols << "  ";
    cols = format_double(m.best_seconds * 1e3, 3);
    for (std::size_t p = cols.size(); p < 9; ++p) os << ' ';
    os << cols << "  ";
    cols = format_double(m.insns_per_sec / 1e6, 1);
    for (std::size_t p = cols.size(); p < 8; ++p) os << ' ';
    os << cols << "  ";
    cols = format_double(m.ns_per_insn, 3);
    for (std::size_t p = cols.size(); p < 8; ++p) os << ' ';
    os << cols << "\n";
  }
  os << "\ngeomean speedup (fast / reference):        "
     << format_double(geomean_speedup(ms), 2) << "x\n";
  os << "geomean speedup (fast-nofuse / reference): "
     << format_double(geomean_ratio(ms, "fast-nofuse", "reference"), 2) << "x\n";
  os << "geomean speedup (fast / fast-nofuse):      "
     << format_double(geomean_ratio(ms, "fast", "fast-nofuse"), 2) << "x\n";
}

}  // namespace ith::bench
