#include "dispatch_bench.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "fuzz/generator.hpp"
#include "runtime/icache.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "support/error.hpp"
#include "workloads/suite.hpp"

namespace ith::bench {
namespace {

/// Compiles nothing: every method runs as-is at the Opt tier with zero
/// compile accounting — the measurement loop then times pure dispatch, not
/// the tiering policy. Bodies stay alive for the source's lifetime, which
/// spans every engine constructed over it (the CodeSource contract).
class PlainSource final : public rt::CodeSource {
 public:
  explicit PlainSource(const bc::Program& prog) : prog_(prog), compiled_(prog.num_methods()) {}

  const rt::CompiledMethod& invoke(bc::MethodId id) override {
    auto& slot = compiled_[static_cast<std::size_t>(id)];
    if (!slot) {
      slot = std::make_unique<rt::CompiledMethod>();
      slot->body = prog_.method(id);
      slot->tier = rt::Tier::kOpt;
      slot->method_id = id;
      slot->code_base = 0x1000 + 0x10000 * static_cast<std::uint64_t>(id);
      slot->origin.resize(slot->body.size());
      for (std::size_t pc = 0; pc < slot->body.size(); ++pc) {
        slot->origin[pc] = {id, static_cast<std::int32_t>(pc)};
      }
      slot->finalize();
    }
    return *slot;
  }

 private:
  const bc::Program& prog_;
  std::vector<std::unique_ptr<rt::CompiledMethod>> compiled_;
};

struct NamedProgram {
  std::string name;
  bc::Program program;
};

/// Suite subset chosen for dispatch diversity: tight arithmetic loops
/// (compress), global-heavy lookups (db), call-dense recursion (raytrace),
/// branchy scanning (jack) — plus one generator program exercising the
/// opcode-set corners none of the structured workloads reach.
std::vector<NamedProgram> dispatch_programs(const DispatchBenchConfig& config) {
  std::vector<NamedProgram> out;
  for (const char* name : {"compress", "db", "raytrace", "jack"}) {
    out.push_back({name, wl::make_workload(name, config.run_scale).program});
  }
  fuzz::GeneratorSpec spec;
  spec.seed = config.fuzz_seed;
  spec.max_methods = 10;
  spec.max_stmts = 12;
  spec.max_fuel = 9;
  out.push_back({"adversarial", fuzz::generate_adversarial(spec)});
  return out;
}

struct EngineTiming {
  rt::ExecStats cold;   ///< stats of the cold (warm-up) run, fresh icache
  double best_seconds;  ///< fastest of `repeats` steady-state runs
};

EngineTiming measure_engine(const bc::Program& prog, const rt::MachineModel& machine,
                            rt::EngineKind kind, const DispatchBenchConfig& config) {
  PlainSource source(prog);
  std::optional<rt::ICache> icache;
  if (config.with_icache) {
    icache.emplace(machine.icache_bytes, machine.icache_line_bytes, machine.icache_assoc);
  }
  rt::InterpreterOptions opts;
  opts.engine = kind;
  rt::Interpreter interp(prog, machine, source, icache ? &*icache : nullptr, opts);

  // Cold run: pays predecoding, arena growth, and icache fill once, and
  // yields the stats used for the cross-engine equality check.
  const rt::ExecStats cold = interp.run();

  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < config.repeats; ++r) {
    interp.reset_globals();
    const auto t0 = std::chrono::steady_clock::now();
    const rt::ExecStats stats = interp.run();
    const auto t1 = std::chrono::steady_clock::now();
    ITH_CHECK(stats.instructions == cold.instructions,
              "dispatch bench: instruction count drifted across repeats");
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return {cold, best};
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

std::vector<std::string> dispatch_workload_names(const DispatchBenchConfig& config) {
  std::vector<std::string> names;
  for (const NamedProgram& np : dispatch_programs(config)) names.push_back(np.name);
  return names;
}

std::vector<DispatchMeasurement> run_dispatch_bench(const DispatchBenchConfig& config) {
  ITH_CHECK(config.repeats >= 1, "dispatch bench needs at least one repeat");
  const rt::MachineModel machine = rt::pentium4_model();
  std::vector<DispatchMeasurement> out;
  for (const NamedProgram& np : dispatch_programs(config)) {
    const EngineTiming fast = measure_engine(np.program, machine, rt::EngineKind::kFast, config);
    const EngineTiming ref =
        measure_engine(np.program, machine, rt::EngineKind::kReference, config);
    if (!(fast.cold == ref.cold)) {
      throw Error("dispatch bench: engines disagree on '" + np.name +
                  "' — refusing to time non-equivalent executions");
    }
    for (const auto* t : {&fast, &ref}) {
      DispatchMeasurement m;
      m.workload = np.name;
      m.engine = (t == &fast) ? "fast" : "reference";
      m.instructions = t->cold.instructions;
      m.sim_cycles = t->cold.cycles;
      m.best_seconds = t->best_seconds;
      m.insns_per_sec = static_cast<double>(t->cold.instructions) / t->best_seconds;
      m.ns_per_insn = t->best_seconds * 1e9 / static_cast<double>(t->cold.instructions);
      out.push_back(std::move(m));
    }
  }
  return out;
}

double geomean_speedup(const std::vector<DispatchMeasurement>& ms) {
  double log_sum = 0.0;
  int n = 0;
  for (std::size_t i = 0; i + 1 < ms.size(); i += 2) {
    log_sum += std::log(ms[i].insns_per_sec / ms[i + 1].insns_per_sec);
    ++n;
  }
  return n == 0 ? 1.0 : std::exp(log_sum / n);
}

void write_bench_json(std::ostream& os, const DispatchBenchConfig& config,
                      const std::vector<DispatchMeasurement>& ms) {
  os << "{\n";
  os << "  \"benchmark\": \"interpreter_dispatch\",\n";
  os << "  \"unit\": \"interpreted instructions per wall-clock second\",\n";
  os << "  \"config\": {\"repeats\": " << config.repeats << ", \"run_scale\": "
     << format_double(config.run_scale, 2) << ", \"fuzz_seed\": " << config.fuzz_seed
     << ", \"icache\": " << (config.with_icache ? "true" : "false") << "},\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const DispatchMeasurement& m = ms[i];
    os << "    {\"workload\": \"" << m.workload << "\", \"engine\": \"" << m.engine
       << "\", \"instructions\": " << m.instructions << ", \"sim_cycles\": " << m.sim_cycles
       << ", \"best_seconds\": " << format_double(m.best_seconds, 6)
       << ", \"insns_per_sec\": " << format_double(m.insns_per_sec, 0)
       << ", \"ns_per_insn\": " << format_double(m.ns_per_insn, 3) << "}"
       << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"geomean_speedup_fast_over_reference\": " << format_double(geomean_speedup(ms), 3)
     << "\n";
  os << "}\n";
}

void print_dispatch_table(std::ostream& os, const std::vector<DispatchMeasurement>& ms) {
  os << "workload      engine     instructions    best ms   Minsn/s   ns/insn\n";
  os << "--------------------------------------------------------------------\n";
  for (const DispatchMeasurement& m : ms) {
    os << m.workload;
    for (std::size_t p = m.workload.size(); p < 14; ++p) os << ' ';
    os << m.engine;
    for (std::size_t p = m.engine.size(); p < 11; ++p) os << ' ';
    std::string cols = format_double(static_cast<double>(m.instructions), 0);
    for (std::size_t p = cols.size(); p < 12; ++p) os << ' ';
    os << cols << "  ";
    cols = format_double(m.best_seconds * 1e3, 3);
    for (std::size_t p = cols.size(); p < 9; ++p) os << ' ';
    os << cols << "  ";
    cols = format_double(m.insns_per_sec / 1e6, 1);
    for (std::size_t p = cols.size(); p < 8; ++p) os << ' ';
    os << cols << "  ";
    cols = format_double(m.ns_per_insn, 3);
    for (std::size_t p = cols.size(); p < 8; ++p) os << ' ';
    os << cols << "\n";
  }
  os << "\ngeomean speedup (fast / reference): "
     << format_double(geomean_speedup(ms), 2) << "x\n";
}

}  // namespace ith::bench
