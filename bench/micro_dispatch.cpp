// Dispatch-engine micro-benchmark: wall-clock throughput of the fast
// (predecoded direct-threaded) engine vs. the reference switch interpreter
// over a fixed workload set. Prints a table; optionally writes the
// BENCH_interpreter.json document.
//
//   micro_dispatch [--repeats=N] [--json=PATH]
//                  [--guard=BASELINE.json] [--tolerance=0.01]
//
// --guard compares this run's fast/reference geomean speedup against the
// recorded baseline document and fails (exit 1) when it regressed by more
// than --tolerance (relative). The ratio is host-machine independent, so
// the same guard value works on a laptop and in CI; it is the overhead
// budget for the observability layer — with a null obs context the fast
// engine must keep its full speedup over the reference engine.
//
// The guard is fusion-policy aware: under ITH_FUSION=0 the "fast" engine
// runs unfused, so the guard compares against the baseline's recorded
// *unfused* geomean (geomean_speedup_unfused_over_reference) instead of
// the headline fused number — the same recorded document guards both CI
// legs. On failure it prints a per-workload current-vs-recorded breakdown
// so the offending workload is identifiable without rerunning locally.
//
// The simulated ExecStats are checked for cross-engine equality before any
// timing is reported, so a regression in the equivalence guarantee fails
// the benchmark instead of skewing it.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "dispatch_bench.hpp"
#include "runtime/predecode.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace {

ith::JsonValue load_baseline(const std::string& path) {
  std::ifstream in(path);
  ITH_CHECK(in.is_open(), "cannot open baseline " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ith::parse_json(buf.str());
}

/// The recorded geomean the current run must hold. Selected by the active
/// fusion policy; documents recorded before fusion existed only carry the
/// fast/reference field, which is the correct unfused baseline for them.
double baseline_geomean_speedup(const ith::JsonValue& doc, const std::string& path,
                                bool fusion_off) {
  if (fusion_off) {
    if (const ith::JsonValue* v = doc.find("geomean_speedup_unfused_over_reference");
        v != nullptr && v->kind == ith::JsonValue::Kind::kNumber) {
      return v->number;
    }
  }
  const ith::JsonValue* v = doc.find("geomean_speedup_fast_over_reference");
  ITH_CHECK(v != nullptr && v->kind == ith::JsonValue::Kind::kNumber,
            path + ": geomean_speedup_fast_over_reference missing");
  return v->number;
}

/// Per-workload fast-engine/reference speedups from a baseline document's
/// results array. `fast_engine` is "fast" or "fast-nofuse"; falls back to
/// "fast" rows when the document predates the three-variant format.
std::map<std::string, double> baseline_workload_speedups(const ith::JsonValue& doc,
                                                         const std::string& fast_engine) {
  std::map<std::string, double> fast_ips, ref_ips;
  const ith::JsonValue* results = doc.find("results");
  if (results == nullptr || results->kind != ith::JsonValue::Kind::kArray) return {};
  for (const ith::JsonValue& row : results->items) {
    const ith::JsonValue* wl = row.find("workload");
    const ith::JsonValue* engine = row.find("engine");
    const ith::JsonValue* ips = row.find("insns_per_sec");
    if (wl == nullptr || engine == nullptr || ips == nullptr) continue;
    if (engine->str == fast_engine || (fast_ips.count(wl->str) == 0 && engine->str == "fast")) {
      fast_ips[wl->str] = ips->number;
    } else if (engine->str == "reference") {
      ref_ips[wl->str] = ips->number;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [wl, ips] : fast_ips) {
    if (ref_ips.count(wl) != 0 && ref_ips[wl] > 0) out[wl] = ips / ref_ips[wl];
  }
  return out;
}

void print_guard_breakdown(const std::vector<ith::bench::DispatchMeasurement>& results,
                           const std::map<std::string, double>& recorded,
                           const std::string& variant) {
  std::cerr << "per-workload speedup (" << variant << " / reference), current vs recorded:\n";
  std::map<std::string, double> fast_ips, ref_ips;
  for (const auto& m : results) {
    if (m.engine == "fast") fast_ips[m.workload] = m.insns_per_sec;
    if (m.engine == "reference") ref_ips[m.workload] = m.insns_per_sec;
  }
  for (const auto& [wl, ips] : fast_ips) {
    if (ref_ips.count(wl) == 0) continue;
    const double current = ips / ref_ips[wl];
    std::cerr << "  " << wl << ": " << current << "x";
    const auto it = recorded.find(wl);
    if (it != recorded.end()) {
      std::cerr << " (recorded " << it->second << "x, " << (current / it->second - 1.0) * 100
                << "% drift)";
    }
    std::cerr << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ith::bench::DispatchBenchConfig config;
  std::string json_path;
  std::string guard_path;
  double tolerance = 0.01;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repeats=", 0) == 0) {
      config.repeats = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--guard=", 0) == 0) {
      guard_path = arg.substr(8);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::atof(arg.c_str() + 12);
    } else {
      std::cerr << "usage: micro_dispatch [--repeats=N] [--json=PATH]"
                   " [--guard=BASELINE.json] [--tolerance=R]\n";
      return 2;
    }
  }
  try {
    const auto results = ith::bench::run_dispatch_bench(config);
    ith::bench::print_dispatch_table(std::cout, results);
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "micro_dispatch: cannot write " << json_path << "\n";
        return 1;
      }
      ith::bench::write_bench_json(out, config, results);
      std::cout << "wrote " << json_path << "\n";
    }
    if (!guard_path.empty()) {
      const bool fusion_off = ith::rt::default_fusion_policy() == ith::rt::FusionPolicy::kOff;
      const ith::JsonValue doc = load_baseline(guard_path);
      const double baseline = baseline_geomean_speedup(doc, guard_path, fusion_off);
      const double current = ith::bench::geomean_speedup(results);
      const double floor = baseline * (1.0 - tolerance);
      std::cout << "guard: geomean speedup " << current << " vs recorded " << baseline
                << " (fusion " << ith::rt::fusion_policy_name(ith::rt::default_fusion_policy())
                << ", floor " << floor << ", tolerance " << tolerance * 100 << "%)\n";
      if (current < floor) {
        // Name the variant that regressed and the exact recorded-vs-measured
        // pair: a CI log must identify the failing engine leg without
        // rerunning locally.
        const std::string variant = fusion_off ? "fast-nofuse" : "fast";
        std::cerr << "micro_dispatch: engine variant '" << variant
                  << "' regressed below the guard floor: recorded geomean " << baseline
                  << "x, measured " << current << "x (floor " << floor << ", ITH_FUSION="
                  << ith::rt::fusion_policy_name(ith::rt::default_fusion_policy()) << ")\n";
        print_guard_breakdown(results, baseline_workload_speedups(doc, variant), variant);
        return 1;
      }
      std::cout << "guard: OK\n";
    }
  } catch (const ith::Error& e) {
    std::cerr << "micro_dispatch: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
