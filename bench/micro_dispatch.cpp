// Dispatch-engine micro-benchmark: wall-clock throughput of the fast
// (predecoded direct-threaded) engine vs. the reference switch interpreter
// over a fixed workload set. Prints a table; optionally writes the
// BENCH_interpreter.json document.
//
//   micro_dispatch [--repeats=N] [--json=PATH]
//
// The simulated ExecStats are checked for cross-engine equality before any
// timing is reported, so a regression in the equivalence guarantee fails
// the benchmark instead of skewing it.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "dispatch_bench.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  ith::bench::DispatchBenchConfig config;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repeats=", 0) == 0) {
      config.repeats = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "usage: micro_dispatch [--repeats=N] [--json=PATH]\n";
      return 2;
    }
  }
  try {
    const auto results = ith::bench::run_dispatch_bench(config);
    ith::bench::print_dispatch_table(std::cout, results);
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "micro_dispatch: cannot write " << json_path << "\n";
        return 1;
      }
      ith::bench::write_bench_json(out, config, results);
      std::cout << "wrote " << json_path << "\n";
    }
  } catch (const ith::Error& e) {
    std::cerr << "micro_dispatch: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
