// Dispatch-engine micro-benchmark: wall-clock throughput of the fast
// (predecoded direct-threaded) engine vs. the reference switch interpreter
// over a fixed workload set. Prints a table; optionally writes the
// BENCH_interpreter.json document.
//
//   micro_dispatch [--repeats=N] [--json=PATH]
//                  [--guard=BASELINE.json] [--tolerance=0.01]
//
// --guard compares this run's fast/reference geomean speedup against the
// recorded baseline document and fails (exit 1) when it regressed by more
// than --tolerance (relative). The ratio is host-machine independent, so
// the same guard value works on a laptop and in CI; it is the overhead
// budget for the observability layer — with a null obs context the fast
// engine must keep its full speedup over the reference engine.
//
// The simulated ExecStats are checked for cross-engine equality before any
// timing is reported, so a regression in the equivalence guarantee fails
// the benchmark instead of skewing it.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "dispatch_bench.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace {

double baseline_geomean_speedup(const std::string& path) {
  std::ifstream in(path);
  ITH_CHECK(in.is_open(), "cannot open baseline " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const ith::JsonValue doc = ith::parse_json(buf.str());
  const ith::JsonValue* v = doc.find("geomean_speedup_fast_over_reference");
  ITH_CHECK(v != nullptr && v->kind == ith::JsonValue::Kind::kNumber,
            path + ": geomean_speedup_fast_over_reference missing");
  return v->number;
}

}  // namespace

int main(int argc, char** argv) {
  ith::bench::DispatchBenchConfig config;
  std::string json_path;
  std::string guard_path;
  double tolerance = 0.01;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repeats=", 0) == 0) {
      config.repeats = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--guard=", 0) == 0) {
      guard_path = arg.substr(8);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::atof(arg.c_str() + 12);
    } else {
      std::cerr << "usage: micro_dispatch [--repeats=N] [--json=PATH]"
                   " [--guard=BASELINE.json] [--tolerance=R]\n";
      return 2;
    }
  }
  try {
    const auto results = ith::bench::run_dispatch_bench(config);
    ith::bench::print_dispatch_table(std::cout, results);
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "micro_dispatch: cannot write " << json_path << "\n";
        return 1;
      }
      ith::bench::write_bench_json(out, config, results);
      std::cout << "wrote " << json_path << "\n";
    }
    if (!guard_path.empty()) {
      const double baseline = baseline_geomean_speedup(guard_path);
      const double current = ith::bench::geomean_speedup(results);
      const double floor = baseline * (1.0 - tolerance);
      std::cout << "guard: geomean speedup " << current << " vs recorded " << baseline
                << " (floor " << floor << ", tolerance " << tolerance * 100 << "%)\n";
      if (current < floor) {
        std::cerr << "micro_dispatch: fast-engine speedup regressed below the guard floor\n";
        return 1;
      }
      std::cout << "guard: OK\n";
    }
  } catch (const ith::Error& e) {
    std::cerr << "micro_dispatch: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
