// Run-length ablation: the paper motivates its multiple optimization goals
// by run length — "when the program is likely to run for a considerable
// length of time, it may be preferable to reduce the running time at the
// expense of potentially greater compilation time" (section 3.3). This
// bench makes that quantitative: sweep the benchmarks' input size
// (run_scale) and show how the trade-off between the conservative
// Opt:Tot-tuned heuristic and an aggressive always-inline policy flips as
// runs get longer.
//
// Expected shape: at small scales (short runs, compile-dominated) the
// conservative tuned heuristic wins total time; as scale grows the
// aggressive policy's running-time advantage amortizes its compile cost
// and eventually wins — the crossover the paper's goal taxonomy implies.

#include <iostream>

#include "common.hpp"
#include "heuristics/heuristic.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "vm/vm.hpp"

using namespace ith;

namespace {

/// Geomean total cycles of the SPEC suite at `scale` under heuristic `h`.
double suite_total(double scale, heur::InlineHeuristic& h) {
  std::vector<double> totals;
  const rt::MachineModel machine = bench::machine_for(false);
  for (const wl::Workload& w : wl::make_suite("specjvm98", scale)) {
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kOpt;
    vm::VirtualMachine m(w.program, machine, h, cfg);
    totals.push_back(static_cast<double>(m.run(2).total_cycles));
  }
  return geomean(totals);
}

}  // namespace

int main() {
  bench::print_header("ablation_runlength",
                      "section 3.3's run-length argument for multiple optimization goals");

  const heur::InlineParams conservative = bench::recorded_tuned_params()[2];  // Opt:Tot

  std::cout << "SPECjvm98 under Opt, geomean total time, conservative (Opt:Tot-tuned)\n"
               "vs aggressive (always-inline) heuristic, as input size scales:\n";
  Table t({"run_scale", "conservative (cyc)", "aggressive (cyc)", "aggressive/conservative"});
  double prev_ratio = 0.0;
  double crossover = 0.0;
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    heur::JikesHeuristic cons(conservative);
    heur::AlwaysInlineHeuristic aggr(12);
    const double c = suite_total(scale, cons);
    const double a = suite_total(scale, aggr);
    const double ratio = a / c;
    if (prev_ratio > 1.0 && ratio <= 1.0) crossover = scale;
    prev_ratio = ratio;
    t.add_row({cell(scale, 2), cell(c, 0), cell(a, 0), cell(ratio, 4)});
  }
  t.render(std::cout);
  if (crossover > 0.0) {
    std::cout << "crossover: the aggressive policy starts winning near run_scale "
              << cell(crossover, 2) << "\n";
  } else if (prev_ratio > 1.0) {
    std::cout << "no crossover in range: compile cost dominates throughout\n";
  } else {
    std::cout << "no crossover in range: running time dominates throughout\n";
  }
  std::cout << "\nReading: ratios > 1 mean the conservative tuning wins (short runs,\n"
               "compile-bound); ratios < 1 mean aggressive inlining amortized (long\n"
               "runs) — the reason a single tuning goal cannot serve all run lengths.\n";
  return 0;
}
