#include "harness.hpp"

#include <cctype>
#include <iostream>

#include "support/env.hpp"
#include "support/error.hpp"
#include "tuner/eval_cache.hpp"
#include "tuner/parameter_space.hpp"

namespace ith::bench {

BenchContext::BenchContext(int argc, const char* const* argv, const std::string& title,
                           const std::string& paper_ref)
    : cli_(argc, argv) {
  opts_.generations =
      static_cast<int>(cli_.get_int_or("generations", env_int_or("ITH_GA_GENERATIONS", 40)));
  opts_.population = static_cast<int>(cli_.get_int_or("pop", env_int_or("ITH_GA_POP", 20)));
  opts_.seed = static_cast<std::uint64_t>(cli_.get_int_or("seed", env_int_or("ITH_GA_SEED", 42)));
  opts_.retune = cli_.get_bool_or("retune", env_int_or("ITH_RETUNE", 0) != 0);
  opts_.eval_cache = cli_.get_or("eval-cache", env_or("ITH_EVAL_CACHE", ""));
  opts_.csv_dir = cli_.get_or("csv-dir", env_or("ITH_CSV_DIR", ""));
  opts_.trace_path = cli_.get_or("trace", "");
  opts_.trace_format = cli_.get_or("trace-format", "jsonl");
  opts_.trace_categories = obs::category_mask_from_string(cli_.get_or("trace-cats", "all"));

  print_header(title, paper_ref);

  if (!opts_.trace_path.empty()) {
    ITH_CHECK(opts_.trace_format == "jsonl" || opts_.trace_format == "chrome",
              "--trace-format must be jsonl or chrome, got " + opts_.trace_format);
    trace_file_.open(opts_.trace_path);
    ITH_CHECK(trace_file_.is_open(), "cannot open trace file " + opts_.trace_path);
    if (opts_.trace_format == "chrome") {
      sink_ = std::make_unique<obs::ChromeTraceSink>(trace_file_);
    } else {
      sink_ = std::make_unique<obs::JsonlSink>(trace_file_);
    }
    ctx_.emplace(sink_.get(), opts_.trace_categories);
    std::cout << "[tracing to " << opts_.trace_path << " (" << opts_.trace_format << ")]\n\n";
  }
}

BenchContext::~BenchContext() {
  if (ctx_) ctx_->flush();
  sink_.reset();  // ChromeTraceSink writes its closing bracket at destruction
}

ga::GaConfig BenchContext::ga_config() {
  ga::GaConfig cfg = tuner::default_ga_config(opts_.generations, opts_.seed);
  cfg.population = opts_.population;
  cfg.obs = obs();
  return cfg;
}

tuner::EvalConfig BenchContext::eval_config_for(const ScenarioSpec& spec) {
  tuner::EvalConfig cfg = bench::eval_config_for(spec);
  cfg.obs = obs();
  return cfg;
}

heur::InlineParams BenchContext::tuned_params_for(std::size_t scenario_index) {
  const ScenarioSpec& spec = table4_scenarios().at(scenario_index);
  if (!opts_.retune) {
    return recorded_tuned_params().at(scenario_index);
  }
  ga::GaConfig cfg = ga_config();
  cfg.seed += 1000 * scenario_index;  // independent GA experiment per scenario
  std::cout << "[retuning " << spec.label << " live: pop " << cfg.population << ", up to "
            << cfg.generations << " generations]\n";
  tuner::SuiteEvaluator train(wl::make_suite("specjvm98"), eval_config_for(spec));

  // Per-scenario cache file: scenarios differ in machine model / scenario /
  // goal, so they have different evaluator fingerprints and cannot share one.
  const std::string cache_path =
      opts_.eval_cache.empty() ? "" : opts_.eval_cache + ".s" + std::to_string(scenario_index);
  if (!cache_path.empty() && std::ifstream(cache_path).good()) {
    try {
      train.restore(tuner::load_eval_cache(cache_path));
      std::cout << "[eval-cache: warm start from " << cache_path << ", " << train.cache_size()
                << " cached suite evaluations]\n";
    } catch (const Error& e) {
      // Stale or corrupt caches cost a re-evaluation, never correctness.
      std::cerr << "[eval-cache ignored: " << e.what() << "]\n";
    }
  }
  const heur::InlineParams best = tuner::tune(train, spec.goal, cfg).best;
  if (!cache_path.empty()) {
    tuner::save_eval_cache(cache_path, train.snapshot());
    std::cout << "[eval-cache: saved " << train.cache_size() << " suite evaluations to "
              << cache_path << " (" << train.evaluations_performed()
              << " evaluated this run)]\n";
  }
  return best;
}

void BenchContext::print_figure_panels(const ScenarioSpec& spec,
                                       const heur::InlineParams& tuned) {
  std::cout << "scenario=" << spec.label << " machine=" << machine_for(spec.ppc).name
            << " goal=" << tuner::goal_name(spec.goal) << "\n";
  std::cout << "tuned params:   " << tuned.to_string() << "\n";
  std::cout << "default params: " << heur::default_params().to_string() << "\n\n";

  // Machine-readable series next to the human tables, for replotting.
  std::string tag;
  for (char c : spec.label) tag += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';

  const char* panel = "ab";
  const char* suites[2] = {"specjvm98", "dacapo+jbb"};
  const char* roles[2] = {"training suite", "unseen test suite"};
  for (int i = 0; i < 2; ++i) {
    tuner::SuiteEvaluator eval(wl::make_suite(suites[i]), eval_config_for(spec));
    const auto with_default = eval.default_results();
    const auto with_tuned = eval.evaluate(tuned);
    const auto rows = tuner::compare_results(*with_tuned, *with_default);
    std::cout << "(" << panel[i] << ") " << suites[i] << " (" << roles[i]
              << "), normalized to the default heuristic (<1.0 = improvement):\n";
    tuner::comparison_table(rows).render(std::cout);
    std::cout << "\n";
    if (!opts_.csv_dir.empty()) {
      const std::string path =
          opts_.csv_dir + "/" + tag + "_" + (i == 0 ? "spec" : "dacapo") + ".csv";
      std::ofstream out(path);
      if (out) {
        tuner::write_comparison_csv(out, rows);
        std::cout << "[csv written to " << path << "]\n\n";
      } else {
        std::cerr << "[cannot write " << path << "]\n\n";
      }
    }
  }
}

int bench_main(int argc, const char* const* argv, const std::string& title,
               const std::string& paper_ref, const std::function<int(BenchContext&)>& body) {
  try {
    BenchContext bx(argc, argv, title, paper_ref);
    return body(bx);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ith::bench
