// Reproduces Figure 9 — Optimizing scenario tuned for balance on PPC (Opt:PPC).
// Panels: (a) SPECjvm98 (training suite), (b) DaCapo+JBB (unseen test
// suite); tuned heuristic normalized to the Jikes RVM default.
// Uses the recorded Table-4 parameters; set ITH_RETUNE=1 to re-run the GA.

#include "common.hpp"

using namespace ith;

int main() {
  bench::print_header("fig9_optbal_ppc", "Figure 9 — Optimizing scenario tuned for balance on PPC (Opt:PPC)");
  const bench::ScenarioSpec& spec = bench::table4_scenarios()[4];
  bench::print_figure_panels(spec, bench::tuned_params_for(4));
  return 0;
}
