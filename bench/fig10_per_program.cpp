// Reproduces Figure 10: "Running time reduction when tuning for each
// program in turn" — the GA tunes the heuristic *per benchmark* for pure
// running time (x86, Opt scenario), the paper's occasionally-useful mode
// for long-running programs where compile time is insignificant.
//
// Shape to reproduce: per-program tuning beats suite-tuning on running time
// (paper: >=10% on every SPEC program, 15% average overall, with ps the one
// program showing no significant win).
//
// Uses recorded per-program parameters; --retune (ITH_RETUNE=1) re-runs the
// GA for every benchmark (14 GA runs — budget via --generations/--pop).

#include <iostream>

#include "harness.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

using namespace ith;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig10_per_program",
                           "Figure 10 — per-program tuning for running time (x86, Opt)",
                           [](bench::BenchContext& bx) {
  tuner::EvalConfig cfg;
  cfg.machine = bench::machine_for(false);
  cfg.scenario = vm::Scenario::kOpt;
  cfg.obs = bx.obs();

  const bool retune = bx.options().retune;
  ga::GaConfig ga_cfg = bx.ga_config();
  if (retune) {
    std::cout << "[retuning per program: pop " << ga_cfg.population << ", up to "
              << ga_cfg.generations << " generations each]\n\n";
  }

  Table t({"benchmark", "suite", "running (norm)", "running red.", "params"});
  std::vector<double> spec_ratios, dacapo_ratios, all_ratios;
  for (const auto& [name, recorded] : bench::recorded_fig10_params()) {
    tuner::SuiteEvaluator eval({wl::make_workload(name)}, cfg);
    heur::InlineParams params = recorded;
    if (retune) {
      params = tuner::tune(eval, tuner::Goal::kRunning, ga_cfg).best;
    }
    const auto dflt = eval.default_results();
    const auto tuned = eval.evaluate(params);
    const double ratio = static_cast<double>((*tuned)[0].running_cycles) /
                         static_cast<double>((*dflt)[0].running_cycles);
    const std::string suite = wl::make_workload(name).suite;
    (suite == "specjvm98" ? spec_ratios : dacapo_ratios).push_back(ratio);
    all_ratios.push_back(ratio);
    t.add_row({name, suite, cell_ratio(ratio), cell_percent(percent_reduction(ratio)),
               params.to_string()});
    if (retune) {
      std::cout << "  " << name << ": " << params.to_string() << "\n";
    }
  }
  t.add_rule();
  t.add_row({"average (SPECjvm98)", "", cell_ratio(mean(spec_ratios)),
             cell_percent(percent_reduction(mean(spec_ratios))), ""});
  t.add_row({"average (DaCapo+JBB)", "", cell_ratio(mean(dacapo_ratios)),
             cell_percent(percent_reduction(mean(dacapo_ratios))), ""});
  t.add_row({"average (all)", "", cell_ratio(mean(all_ratios)),
             cell_percent(percent_reduction(mean(all_ratios))), ""});
  if (retune) std::cout << "\n";
  t.render(std::cout);
  std::cout << "\nPaper: ~15% average running-time reduction; ps shows no significant win.\n";
  return 0;
  });
}
