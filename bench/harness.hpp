// Unified harness for the figure/table reproduction mains.
//
// Every bench binary used to hand-roll the same wiring: read the GA budget
// from the environment, decide recorded-vs-live parameters, open CSV
// outputs, print the banner. BenchContext centralizes that plus the new
// observability plumbing, exposed as CLI flags with the historical
// environment variables as fallbacks (flags win):
//
//   --generations=N   (ITH_GA_GENERATIONS, default 40)
//   --pop=N           (ITH_GA_POP, default 20)
//   --seed=N          (ITH_GA_SEED, default 42)
//   --retune          (ITH_RETUNE=1) re-run the GA instead of using the
//                     recorded Table-4 parameters
//   --eval-cache=PATH (ITH_EVAL_CACHE) persistent evaluation cache for
//                     --retune runs: loaded (if present and compatible)
//                     before each scenario's GA run and saved back after,
//                     so repeated retunes skip every suite evaluation they
//                     have already paid for. Each scenario gets its own
//                     file, PATH.s<scenario-index>, because different
//                     scenarios have different evaluator fingerprints. A
//                     stale or corrupt file is ignored with a warning.
//   --csv-dir=DIR     (ITH_CSV_DIR) write machine-readable CSV series
//   --trace=PATH      write a structured trace (off when absent)
//   --trace-format=F  jsonl (default) or chrome (chrome://tracing/Perfetto)
//   --trace-cats=CSV  category filter, e.g. "eval,ga" (default: all)
//
// Usage:
//   int main(int argc, char** argv) {
//     return bench::bench_main(argc, argv, "fig5_adapt_x86", "Figure 5 — ...",
//                              [](bench::BenchContext& bx) {
//       bx.print_figure_panels(bench::table4_scenarios()[0], bx.tuned_params_for(0));
//       return 0;
//     });
//   }
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common.hpp"
#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "support/cli.hpp"

namespace ith::bench {

/// Flag/env-resolved options shared by every bench main.
struct BenchOptions {
  int generations = 40;
  int population = 20;
  std::uint64_t seed = 42;
  bool retune = false;
  std::string eval_cache;  ///< empty = no persistent evaluation cache
  std::string csv_dir;
  std::string trace_path;               ///< empty = tracing off
  std::string trace_format = "jsonl";   ///< "jsonl" or "chrome"
  std::uint32_t trace_categories = obs::kAllCategories;
};

class BenchContext {
 public:
  /// Parses flags (with env fallback), prints the banner, and — when
  /// --trace is given — opens the sink and constructs the obs::Context.
  BenchContext(int argc, const char* const* argv, const std::string& title,
               const std::string& paper_ref);
  ~BenchContext();  // flushes counters and closes the trace file

  BenchContext(const BenchContext&) = delete;
  BenchContext& operator=(const BenchContext&) = delete;

  const BenchOptions& options() const { return opts_; }
  const CliParser& cli() const { return cli_; }

  /// Null when tracing is off; owned by this context otherwise.
  obs::Context* obs() { return ctx_ ? &*ctx_ : nullptr; }

  /// GA budget from the resolved options.
  ga::GaConfig ga_config();

  /// Evaluator config for a Table-4 scenario, with the trace context wired
  /// through (EvalConfig::obs -> VmConfig::obs -> OptimizerOptions::obs).
  tuner::EvalConfig eval_config_for(const ScenarioSpec& spec);

  /// Tuned parameters for scenario index `i`: the recorded Table-4 values,
  /// or a live GA run when --retune / ITH_RETUNE=1.
  heur::InlineParams tuned_params_for(std::size_t scenario_index);

  /// The standard (a)/(b) two-suite tuned-vs-default panels, honoring
  /// --csv-dir and tracing through this context.
  void print_figure_panels(const ScenarioSpec& spec, const heur::InlineParams& tuned);

 private:
  CliParser cli_;
  BenchOptions opts_;
  std::ofstream trace_file_;
  std::unique_ptr<obs::TraceSink> sink_;
  std::optional<obs::Context> ctx_;
};

/// Runs `body` with a fully wired BenchContext; catches ith::Error into a
/// message + non-zero exit so every bench main reports failures uniformly.
int bench_main(int argc, const char* const* argv, const std::string& title,
               const std::string& paper_ref, const std::function<int(BenchContext&)>& body);

}  // namespace ith::bench
