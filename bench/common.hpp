// Shared plumbing for the figure/table reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper. GA
// budgets come from the environment so the same binaries serve smoke runs
// and paper-scale runs:
//
//   ITH_GA_GENERATIONS  generations per GA run (default 40; paper used 500)
//   ITH_GA_POP          population size        (default 20, as the paper)
//   ITH_GA_SEED         GA seed                (default 42)
//   ITH_RETUNE=1        re-run the GA live instead of using the recorded
//                       parameter values (figs 5-10, table 5)
//
// The "recorded" values are the output of bench/table4_tuned_params with
// the default budget and seed — the analogue of the paper shipping Table 4
// inside the compiler.
#pragma once

#include <string>
#include <vector>

#include "ga/ga.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fitness.hpp"
#include "tuner/report.hpp"
#include "tuner/tuner.hpp"
#include "workloads/suite.hpp"

namespace ith::bench {

/// One tuning scenario of Table 4.
struct ScenarioSpec {
  std::string label;       ///< e.g. "Adapt", "Opt:Bal", "Adapt (PPC)"
  vm::Scenario scenario;
  tuner::Goal goal;
  bool ppc;                ///< machine: false = Pentium-4, true = PowerPC G4
};

/// The five tuned columns of Table 4, in paper order.
const std::vector<ScenarioSpec>& table4_scenarios();

rt::MachineModel machine_for(bool ppc);

/// Evaluator over a suite for a scenario spec.
tuner::EvalConfig eval_config_for(const ScenarioSpec& spec);

/// GA budget from the environment (see header comment).
ga::GaConfig ga_config_from_env();

/// Tuned parameter values recorded from a default-budget table4 run
/// (ITH_GA_GENERATIONS=60, seed 42). Index parallel to table4_scenarios().
const std::vector<heur::InlineParams>& recorded_tuned_params();

/// Recorded per-program running-time parameters (figure 10); pairs of
/// (benchmark name, params), x86 Opt scenario.
const std::vector<std::pair<std::string, heur::InlineParams>>& recorded_fig10_params();

/// Banner helper.
void print_header(const std::string& title, const std::string& paper_ref);

}  // namespace ith::bench
