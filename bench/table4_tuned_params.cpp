// Reproduces Table 4: "Inlining Parameter Values Found for Intel x86 and
// PowerPC" — runs the genetic algorithm for each compilation scenario over
// the SPECjvm98 training suite and prints the parameter values it finds,
// next to the Jikes RVM defaults. Also prints the Table 1 search ranges.
//
// Budget: --generations / ITH_GA_GENERATIONS (default 40; the paper ran 500
// over noisy wall-clock measurements — our deterministic fitness converges
// far earlier), --pop / ITH_GA_POP (default 20 = paper), --seed / ITH_GA_SEED.
// Tracing: --trace=PATH --trace-format=jsonl|chrome --trace-cats=eval,ga.

#include <iostream>

#include "harness.hpp"
#include "support/table.hpp"
#include "tuner/parameter_space.hpp"

using namespace ith;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "table4_tuned_params", "Table 4 (+ Table 1 ranges)",
                           [](bench::BenchContext& bx) {

  // Table 1: the search space.
  {
    Table t({"parameter", "description", "range"});
    const char* desc[5] = {"Maximum callee size allowable to inline",
                           "Callees smaller than this are always inlined",
                           "Maximum inlining depth at a call site",
                           "Maximum caller size to inline into",
                           "Maximum hot callee to inline"};
    const auto& ranges = heur::param_ranges();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      t.add_row({ranges[i].name, desc[i],
                 std::to_string(ranges[i].lo) + "-" + std::to_string(ranges[i].hi)});
    }
    std::cout << "Table 1 — tuned parameters and ranges (search space "
              << tuner::inline_param_space(true).cardinality() << " settings):\n";
    t.render(std::cout);
    std::cout << "\n";
  }

  const ga::GaConfig ga_cfg = bx.ga_config();
  std::cout << "GA: population " << ga_cfg.population << ", up to " << ga_cfg.generations
            << " generations, seed " << ga_cfg.seed << "\n\n";

  Table t({"Parameters", "Default", "Adapt", "Opt:Bal", "Opt:Tot", "Adapt (PPC)", "Opt:Bal (PPC)"});
  std::vector<heur::InlineParams> found;
  std::size_t scenario_index = 0;
  for (const bench::ScenarioSpec& spec : bench::table4_scenarios()) {
    tuner::SuiteEvaluator train(wl::make_suite("specjvm98"), bx.eval_config_for(spec));
    // Each scenario is an independent GA experiment (its own seed), as in
    // the paper's per-scenario tuning runs.
    ga::GaConfig scenario_cfg = ga_cfg;
    scenario_cfg.seed = ga_cfg.seed + 1000 * scenario_index++;
    const tuner::TuneResult r = tuner::tune(train, spec.goal, scenario_cfg);
    std::cout << spec.label << ": fitness " << cell(r.best_fitness, 4) << " after "
              << r.ga.evaluations << " evaluations (" << r.ga.cache_hits << " cache hits, "
              << r.ga.history.size() << " generations)\n";
    found.push_back(r.best);
  }
  std::cout << "\n";

  const heur::InlineParams dflt = heur::default_params();
  const auto& ranges = heur::param_ranges();
  for (std::size_t row = 0; row < 5; ++row) {
    std::vector<std::string> cells = {ranges[row].name, std::to_string(dflt.to_array()[row])};
    for (std::size_t s = 0; s < found.size(); ++s) {
      const bool opt_scenario = bench::table4_scenarios()[s].scenario == vm::Scenario::kOpt;
      if (row == 4 && opt_scenario) {
        cells.push_back("NA");  // HOT_CALLEE_MAX_SIZE unused under Opt
      } else {
        cells.push_back(std::to_string(found[s].to_array()[row]));
      }
    }
    t.add_row(std::move(cells));
  }
  std::cout << "Table 4 — inlining parameter values found per scenario:\n";
  t.render(std::cout);

  std::cout << "\nRecorded values used by the figure benches (regenerate after model changes):\n";
  for (std::size_t s = 0; s < found.size(); ++s) {
    std::cout << "  " << bench::table4_scenarios()[s].label << ": " << found[s].to_string() << "\n";
  }
  return 0;
  });
}
