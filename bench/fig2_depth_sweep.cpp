// Reproduces Figure 2: "Execution time vs Inlining Depth" for compress (a)
// and jess (b) — MAX_INLINE_DEPTH swept 0..10 with the other parameters at
// their defaults, under both compilation scenarios, x86. Times are total
// execution time in (simulated) seconds, as in the paper's plots.
//
// Shape to reproduce: the best scenario differs by program (compress: Opt,
// jess: Adapt); the default depth 5 is not the best value for either
// program under either scenario.

#include <algorithm>
#include <iostream>

#include "harness.hpp"
#include "heuristics/heuristic.hpp"
#include "support/table.hpp"
#include "vm/vm.hpp"

using namespace ith;

namespace {

double total_seconds(const wl::Workload& w, const rt::MachineModel& machine, vm::Scenario sc,
                     int depth, obs::Context* obs) {
  heur::InlineParams params = heur::default_params();
  params.max_inline_depth = depth;
  heur::JikesHeuristic h(params);
  vm::VmConfig cfg;
  cfg.scenario = sc;
  cfg.obs = obs;
  vm::VirtualMachine m(w.program, machine, h, cfg);
  return machine.cycles_to_seconds(m.run(2).total_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig2_depth_sweep", "Figure 2 (a: compress, b: jess)",
                           [](bench::BenchContext& bx) {
  const rt::MachineModel machine = bench::machine_for(false);

  const char* panel = "ab";
  const char* names[2] = {"compress", "jess"};
  for (int i = 0; i < 2; ++i) {
    const wl::Workload w = wl::make_workload(names[i]);
    Table t({"MAX_INLINE_DEPTH", "Opt total (s)", "Adapt total (s)"});
    int best_opt = 0, best_adapt = 0;
    double best_opt_v = 0, best_adapt_v = 0;
    for (int depth = 0; depth <= 10; ++depth) {
      const double opt = total_seconds(w, machine, vm::Scenario::kOpt, depth, bx.obs());
      const double adapt = total_seconds(w, machine, vm::Scenario::kAdapt, depth, bx.obs());
      if (depth == 0 || opt < best_opt_v) {
        best_opt_v = opt;
        best_opt = depth;
      }
      if (depth == 0 || adapt < best_adapt_v) {
        best_adapt_v = adapt;
        best_adapt = depth;
      }
      t.add_row({std::to_string(depth), cell(opt * 1e3, 3) + "m", cell(adapt * 1e3, 3) + "m"});
    }
    std::cout << "(" << panel[i] << ") " << names[i]
              << " — total execution time vs inline depth (milliseconds simulated):\n";
    t.render(std::cout);
    std::cout << "best depth: Opt=" << best_opt << ", Adapt=" << best_adapt
              << " (Jikes default depth: 5)\n";
    const double opt5 = total_seconds(w, machine, vm::Scenario::kOpt, 5, bx.obs());
    const double adapt5 = total_seconds(w, machine, vm::Scenario::kAdapt, 5, bx.obs());
    std::cout << "better scenario overall: "
              << (std::min(best_opt_v, opt5) < std::min(best_adapt_v, adapt5) ? "Opt" : "Adapt")
              << "\n\n";
  }
  return 0;
  });
}
