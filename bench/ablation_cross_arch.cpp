// Cross-architecture ablation: the paper's motivating complaint is that
// Jikes RVM ships ONE heuristic for both Intel and PowerPC. This bench
// quantifies the claim on our simulator: evaluate each architecture's tuned
// parameters on the *other* architecture and show the mismatch penalty.
//
// Expected shape: a heuristic tuned for machine A is worse on machine B
// than B's own tuned heuristic — i.e. architecture-specific tuning matters.

#include <iostream>

#include "common.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

using namespace ith;

namespace {

/// Balance-goal fitness (normalized Perf(S), the tuning objective) of
/// `params` over the SPEC suite on `machine` under Adapt.
double fitness_on(const rt::MachineModel& machine, vm::Scenario scenario,
                  const heur::InlineParams& params) {
  tuner::EvalConfig cfg;
  cfg.machine = machine;
  cfg.scenario = scenario;
  tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), cfg);
  return tuner::suite_fitness(tuner::Goal::kBalance, *eval.evaluate(params),
                              *eval.default_results());
}

}  // namespace

int main() {
  bench::print_header("ablation_cross_arch",
                      "motivation: one heuristic per architecture is suboptimal (section 1)");

  // Recorded Table-4 values: index 0/3 are Adapt x86/PPC, 1/4 Opt:Bal.
  const heur::InlineParams adapt_x86 = bench::recorded_tuned_params()[0];
  const heur::InlineParams adapt_ppc = bench::recorded_tuned_params()[3];
  const heur::InlineParams optbal_x86 = bench::recorded_tuned_params()[1];
  const heur::InlineParams optbal_ppc = bench::recorded_tuned_params()[4];

  const rt::MachineModel x86 = bench::machine_for(false);
  const rt::MachineModel ppc = bench::machine_for(true);

  for (const auto& [label, scenario, px86, pppc] :
       std::vector<std::tuple<const char*, vm::Scenario, heur::InlineParams, heur::InlineParams>>{
           {"Adapt (balance)", vm::Scenario::kAdapt, adapt_x86, adapt_ppc},
           {"Opt (balance)", vm::Scenario::kOpt, optbal_x86, optbal_ppc}}) {
    std::cout << label << " — balance fitness (lower is better, 1.0 = default heuristic):\n";
    Table t({"heuristic \\ machine", "on x86", "on PPC"});
    t.add_row({"default (shipped, both archs)", cell(1.0, 4), cell(1.0, 4)});
    t.add_row({"tuned for x86", cell(fitness_on(x86, scenario, px86), 4),
               cell(fitness_on(ppc, scenario, px86), 4)});
    t.add_row({"tuned for PPC", cell(fitness_on(x86, scenario, pppc), 4),
               cell(fitness_on(ppc, scenario, pppc), 4)});
    t.render(std::cout);

    const double native_x86 = fitness_on(x86, scenario, px86);
    const double foreign_x86 = fitness_on(x86, scenario, pppc);
    const double native_ppc = fitness_on(ppc, scenario, pppc);
    const double foreign_ppc = fitness_on(ppc, scenario, px86);
    std::cout << "mismatch penalty: x86 " << cell_percent((foreign_x86 - native_x86) * 100.0)
              << ", PPC " << cell_percent((foreign_ppc - native_ppc) * 100.0)
              << " (positive = the foreign heuristic is worse than the native one)\n\n";
  }
  std::cout << "Paper's implied shape: each architecture's own tuned values win on it\n"
               "(Table 4's columns differ per architecture).\n";
  return 0;
}
