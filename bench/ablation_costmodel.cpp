// Cost-model ablation: which terms of the machine model create the
// inlining trade-off? Re-runs the Figure-2-style depth sweep on jess with
// individual cost terms neutralized:
//
//   - no I-cache simulation        (code growth loses its running-time cost)
//   - free calls                   (inlining loses its running-time benefit)
//   - linear compile time          (aggressive inlining loses its compile cost)
//
// Expected shape: with calls free, deeper inlining stops helping running
// time; with compilation linear, the penalty for deep inlining flattens;
// the full model produces the paper's "default depth is not optimal" curve.

#include <iostream>

#include "common.hpp"
#include "heuristics/heuristic.hpp"
#include "support/table.hpp"
#include "vm/vm.hpp"

using namespace ith;

namespace {

struct ModelVariant {
  const char* label;
  rt::MachineModel machine;
  bool icache;
};

std::uint64_t total_at_depth(const ModelVariant& v, const wl::Workload& w, int depth) {
  heur::InlineParams params = heur::default_params();
  params.max_inline_depth = depth;
  heur::JikesHeuristic h(params);
  vm::VmConfig cfg;
  cfg.scenario = vm::Scenario::kOpt;
  cfg.simulate_icache = v.icache;
  vm::VirtualMachine m(w.program, v.machine, h, cfg);
  return m.run(2).total_cycles;
}

}  // namespace

int main() {
  bench::print_header("ablation_costmodel",
                      "design-choice ablation: which cost terms create Figure 2's shape");

  std::vector<ModelVariant> variants;
  variants.push_back({"full model", bench::machine_for(false), true});
  variants.push_back({"no i-cache", bench::machine_for(false), false});
  {
    rt::MachineModel m = bench::machine_for(false);
    m.call_overhead_cycles = 0;
    variants.push_back({"free calls", m, true});
  }
  {
    rt::MachineModel m = bench::machine_for(false);
    m.opt_compile_exponent = 1.0;  // linear compilation
    variants.push_back({"linear compile", m, true});
  }

  const wl::Workload w = wl::make_workload("jess");
  std::cout << "jess, Opt scenario, total cycles at MAX_INLINE_DEPTH = d (normalized to d=0):\n";
  Table t({"variant", "d=0", "d=1", "d=2", "d=5", "d=10", "best d"});
  for (const ModelVariant& v : variants) {
    const double base = static_cast<double>(total_at_depth(v, w, 0));
    std::vector<std::string> row = {v.label};
    int best_d = 0;
    double best = base;
    for (int d : {0, 1, 2, 5, 10}) {
      const double total = static_cast<double>(total_at_depth(v, w, d));
      row.push_back(cell(total / base, 4));
      if (total < best) {
        best = total;
        best_d = d;
      }
    }
    row.push_back(std::to_string(best_d));
    t.add_row(std::move(row));
  }
  t.render(std::cout);

  std::cout << "\nReading: under 'free calls' deeper inlining cannot pay for its compile\n"
               "cost at all; under 'linear compile' depth is nearly free; the full model\n"
               "yields the interior optimum the paper's Figure 2 shows.\n\n";

  // --- The I-cache term: Table 4's architecture story ----------------------
  // On the small-cache PPC, aggressive inlining of a code-rich hot path
  // blows the I-cache; on the x86 model it fits. This is the mechanism the
  // paper credits for PPC's preference for shallow MAX_INLINE_DEPTH.
  std::cout << "pseudojbb, Opt scenario, *running* cycles with aggressive inlining\n"
               "(CALLEE=50 ALWAYS=30 DEPTH=15 CALLER=4000), with and without I-cache:\n";
  Table ic({"machine", "icache on", "icache off", "penalty", "misses (iter 2)"});
  for (const bool ppc : {false, true}) {
    const rt::MachineModel machine = bench::machine_for(ppc);
    heur::InlineParams params = heur::default_params();
    params.callee_max_size = 50;
    params.always_inline_size = 30;
    params.max_inline_depth = 15;
    params.caller_max_size = 4000;
    std::uint64_t on = 0, off = 0, misses = 0;
    for (const bool simulate : {true, false}) {
      heur::JikesHeuristic h(params);
      vm::VmConfig cfg;
      cfg.scenario = vm::Scenario::kOpt;
      cfg.simulate_icache = simulate;
      vm::VirtualMachine m(wl::make_workload("pseudojbb").program, machine, h, cfg);
      const vm::RunResult r = m.run(2);
      (simulate ? on : off) = r.running_cycles;
      if (simulate) misses = r.iterations[1].exec.icache_misses;
    }
    ic.add_row({machine.name, cell(static_cast<long long>(on)),
                cell(static_cast<long long>(off)),
                cell_percent(100.0 * (static_cast<double>(on) / static_cast<double>(off) - 1.0)),
                cell(static_cast<long long>(misses))});
  }
  ic.render(std::cout);
  std::cout << "(penalty = running-time cost of code growth; the small PPC cache is hit\n"
               "far harder, which is why its tuned MAX_INLINE_DEPTH is smaller in Table 4)\n";
  return 0;
}
