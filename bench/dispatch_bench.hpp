// Interpreter dispatch micro-benchmark: wall-clock throughput of the two
// execution engines (predecoded direct-threaded "fast" vs. switch-dispatch
// "reference") over a fixed workload set.
//
// This measures *host* time, not simulated cycles — the simulated cycle
// model is engine-invariant by construction (see DESIGN.md, "Execution
// engines"); what differs between engines is how fast the host machine can
// produce those identical numbers. The headline metric is interpreted
// instructions per wall-clock second, best-of-N to shed scheduler noise.
//
// Used by bench/micro_dispatch (human-readable table, optional JSON) and
// tools/bench_json (writes BENCH_interpreter.json for the perf trajectory).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ith::bench {

struct DispatchMeasurement {
  std::string workload;
  std::string engine;              ///< "fast", "fast-nofuse" or "reference"
  std::uint64_t instructions = 0;  ///< per run (engine-invariant)
  std::uint64_t sim_cycles = 0;    ///< simulated cycles, cold icache run
  double best_seconds = 0.0;       ///< fastest repeat
  double insns_per_sec = 0.0;
  double ns_per_insn = 0.0;
};

struct DispatchBenchConfig {
  int repeats = 5;                ///< best-of-N timing repeats per engine
  double run_scale = 1.0;         ///< workload trip-count multiplier
  std::uint64_t fuzz_seed = 7;    ///< pinned seed for the adversarial row
  bool with_icache = true;        ///< probe the simulated I-cache (hot path)
};

/// Names of the fixed workload set (suite programs + one generated
/// adversarial program, pinned seed). Stable across runs by design so the
/// JSON is comparable commit-over-commit.
std::vector<std::string> dispatch_workload_names(const DispatchBenchConfig& config);

/// Runs every workload under three engine variants: "fast" (the predecoded
/// engine at the ambient fusion policy, i.e. ITH_FUSION), "fast-nofuse"
/// (fusion forced off — isolates the superinstruction win from the
/// predecode/threading win), and "reference". Verifies on the way that all
/// three produced identical ExecStats for the cold run (throws ith::Error
/// otherwise — a benchmark that measures different computations is
/// meaningless). Timing rounds are interleaved across the variants so a
/// mid-benchmark change in effective host speed (CPU steal, frequency
/// drift) cancels out of the reported ratios. Results are ordered
/// workload-major: fast, fast-nofuse, reference.
std::vector<DispatchMeasurement> run_dispatch_bench(const DispatchBenchConfig& config);

/// Geometric-mean instructions/sec ratio of engine `num` over engine `den`
/// across workloads (both must be present for every workload).
double geomean_ratio(const std::vector<DispatchMeasurement>& ms, const std::string& num,
                     const std::string& den);

/// Geometric-mean speedup of fast over reference (instructions/sec ratio).
double geomean_speedup(const std::vector<DispatchMeasurement>& ms);

/// Writes the BENCH_interpreter.json document.
void write_bench_json(std::ostream& os, const DispatchBenchConfig& config,
                      const std::vector<DispatchMeasurement>& ms);

/// Human-readable table with a per-workload and geomean speedup column.
void print_dispatch_table(std::ostream& os, const std::vector<DispatchMeasurement>& ms);

}  // namespace ith::bench
