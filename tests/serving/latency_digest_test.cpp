// LatencyDigest: exact nearest-rank quantiles checked against a hand-rolled
// sorted-vector oracle (ties, single sample, heavy tail), and merge checked
// for associativity/commutativity up to sample-multiset equality — the
// property that lets per-instance shards combine in any thread-pool order.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "serving/latency.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ith {
namespace {

/// Independent nearest-rank oracle: the ceil(q*n)-th smallest sample,
/// with q=0 mapped to the minimum.
std::uint64_t oracle_quantile(std::vector<std::uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  if (rank == 0) rank = 1;
  if (rank > v.size()) rank = v.size();
  return v[rank - 1];
}

const double kProbes[] = {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0};

void expect_matches_oracle(const std::vector<std::uint64_t>& samples) {
  serving::LatencyDigest d;
  for (const std::uint64_t s : samples) d.add(s);
  ASSERT_EQ(d.count(), samples.size());
  for (const double q : kProbes) {
    EXPECT_EQ(d.quantile(q), oracle_quantile(samples, q)) << "q=" << q;
  }
}

TEST(LatencyDigest, SingleSample) {
  serving::LatencyDigest d;
  d.add(1234);
  EXPECT_EQ(d.count(), 1u);
  for (const double q : kProbes) EXPECT_EQ(d.quantile(q), 1234u) << "q=" << q;
  EXPECT_EQ(d.min(), 1234u);
  EXPECT_EQ(d.max(), 1234u);
  EXPECT_EQ(d.mean(), 1234u);
  EXPECT_EQ(d.total(), 1234u);
}

TEST(LatencyDigest, AllTiedSamples) {
  expect_matches_oracle(std::vector<std::uint64_t>(37, 500));
}

TEST(LatencyDigest, MixedTies) {
  // Runs of equal values around the common percentile cut points.
  std::vector<std::uint64_t> v;
  for (int i = 0; i < 50; ++i) v.push_back(100);
  for (int i = 0; i < 45; ++i) v.push_back(200);
  for (int i = 0; i < 4; ++i) v.push_back(300);
  v.push_back(400);
  expect_matches_oracle(v);
}

TEST(LatencyDigest, HeavyTail) {
  // The serving tier's shape: a tight body plus a few enormous outliers.
  // p50/p95 must stay in the body while p99/max pick out the tail exactly.
  std::vector<std::uint64_t> v;
  Pcg32 rng(42, 7);
  for (int i = 0; i < 990; ++i) v.push_back(1000 + rng.bounded(100));
  for (int i = 0; i < 10; ++i) v.push_back(1'000'000 + rng.bounded(1000));
  expect_matches_oracle(v);

  serving::LatencyDigest d;
  for (const std::uint64_t s : v) d.add(s);
  EXPECT_LT(d.p95(), 2000u);
  EXPECT_GE(d.quantile(0.999), 1'000'000u);
}

TEST(LatencyDigest, RandomVectorsMatchOracle) {
  Pcg32 rng(1, 99);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint64_t> v;
    const std::size_t n = 1 + rng.bounded(257);
    for (std::size_t i = 0; i < n; ++i) {
      // Small bound forces plenty of ties.
      v.push_back(rng.bounded(round % 2 == 0 ? 10u : 100'000u));
    }
    expect_matches_oracle(v);
  }
}

TEST(LatencyDigest, MeanAndTotal) {
  serving::LatencyDigest d;
  for (const std::uint64_t s : {10u, 20u, 31u}) d.add(s);
  EXPECT_EQ(d.total(), 61u);
  EXPECT_EQ(d.mean(), 20u);  // 61/3 rounded down
}

TEST(LatencyDigest, MergeIsAssociativeAndCommutative) {
  Pcg32 rng(3, 11);
  std::vector<std::uint64_t> all;
  serving::LatencyDigest a, b, c;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t s = rng.bounded(1u << 20);
    all.push_back(s);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(s);
  }

  serving::LatencyDigest left;  // (a+b)+c
  left.merge(a);
  left.merge(b);
  left.merge(c);
  serving::LatencyDigest right;  // a+(c+b), different grouping AND order
  serving::LatencyDigest cb;
  cb.merge(c);
  cb.merge(b);
  right.merge(a);
  right.merge(cb);
  serving::LatencyDigest flat;  // no sharding at all
  for (const std::uint64_t s : all) flat.add(s);

  ASSERT_EQ(left.count(), all.size());
  ASSERT_EQ(right.count(), all.size());
  EXPECT_EQ(left.sorted_samples(), flat.sorted_samples());
  EXPECT_EQ(right.sorted_samples(), flat.sorted_samples());
  EXPECT_EQ(left.total(), flat.total());
  EXPECT_EQ(right.total(), flat.total());
  for (const double q : kProbes) {
    EXPECT_EQ(left.quantile(q), flat.quantile(q)) << "q=" << q;
    EXPECT_EQ(right.quantile(q), flat.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyDigest, MergeEmptyIsNoOp) {
  serving::LatencyDigest d, empty;
  d.add(5);
  d.merge(empty);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_EQ(d.total(), 5u);
  empty.merge(d);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.p50(), 5u);
}

TEST(LatencyDigest, EmptyDigestThrows) {
  const serving::LatencyDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_THROW(d.quantile(0.5), Error);
  EXPECT_THROW(d.mean(), Error);
}

TEST(LatencyDigest, QuantileRangeChecked) {
  serving::LatencyDigest d;
  d.add(1);
  EXPECT_THROW(d.quantile(-0.1), Error);
  EXPECT_THROW(d.quantile(1.1), Error);
}

}  // namespace
}  // namespace ith
