// The latency-regression tier: the serving simulation is a pure function of
// its config. Identical seed + load produce bit-identical per-request
// latency vectors across repeat runs, thread counts, and both interpreter
// engines; online re-tuning converges to the same winner an offline tune()
// finds; and a forced fleet-wide recompilation storm (Rollout::kAll) stays
// inside a generously-sized SLO envelope.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/inline_params.hpp"
#include "runtime/interpreter.hpp"
#include "serving/driver.hpp"
#include "serving/workloads.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/tuner.hpp"

namespace ith {
namespace {

serving::ServingConfig small_config() {
  serving::ServingConfig c;
  c.seed = 5;
  c.instances = 2;
  c.requests = 160;
  c.calibration_requests = 32;
  c.threads = 2;
  return c;
}

void expect_records_identical(const std::vector<serving::RequestRecord>& a,
                              const std::vector<serving::RequestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival) << "request " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "request " << i;
    EXPECT_EQ(a[i].service, b[i].service) << "request " << i;
    EXPECT_EQ(a[i].latency, b[i].latency) << "request " << i;
    EXPECT_EQ(a[i].instance, b[i].instance) << "request " << i;
    EXPECT_EQ(a[i].ok, b[i].ok) << "request " << i;
  }
}

TEST(ServingDeterminism, RepeatRunsAreBitIdentical) {
  const serving::ServingConfig config = small_config();
  const serving::WorkloadServeReport first = serving::serve_workload("kv_server", config);
  const serving::WorkloadServeReport second = serving::serve_workload("kv_server", config);

  ASSERT_EQ(first.records.size(), config.requests);
  expect_records_identical(first.records, second.records);
  EXPECT_EQ(first.calibrated_service, second.calibrated_service);
  EXPECT_EQ(first.mean_gap, second.mean_gap);
  EXPECT_EQ(first.digest.p50(), second.digest.p50());
  EXPECT_EQ(first.digest.p99(), second.digest.p99());
  EXPECT_EQ(first.final_signature, second.final_signature);
}

TEST(ServingDeterminism, ThreadCountDoesNotChangeLatencies) {
  serving::ServingConfig config = small_config();
  config.instances = 3;
  config.threads = 1;
  const serving::WorkloadServeReport serial = serving::serve_workload("query_dispatch", config);
  config.threads = 5;
  const serving::WorkloadServeReport parallel = serving::serve_workload("query_dispatch", config);
  expect_records_identical(serial.records, parallel.records);
}

TEST(ServingDeterminism, EnginesProduceIdenticalLatencies) {
  serving::ServingConfig config = small_config();
  config.engine = rt::EngineKind::kFast;
  const serving::WorkloadServeReport fast = serving::serve_workload("text_pipe", config);
  config.engine = rt::EngineKind::kReference;
  const serving::WorkloadServeReport reference = serving::serve_workload("text_pipe", config);

  // The fast engine must be an *observationally identical* implementation:
  // same simulated service cycles per request, hence the same queueing, the
  // same latency vector, the same percentiles.
  EXPECT_EQ(fast.calibrated_service, reference.calibrated_service);
  expect_records_identical(fast.records, reference.records);
  EXPECT_EQ(fast.digest.p99(), reference.digest.p99());
}

TEST(ServingDeterminism, OnlineTunerConvergesToOfflineWinner) {
  serving::ServingConfig config = small_config();
  config.requests = 180;
  config.online_tune = true;
  config.ga_generations = 3;
  config.ga_population = 8;
  config.ga_seed = 7;
  config.slo_multiplier = 1024.0;  // generous: the SLO gate must not veto

  const serving::WorkloadServeReport report =
      serving::serve_workload("query_dispatch", config);
  ASSERT_EQ(report.records.size(), config.requests);
  EXPECT_EQ(report.retune.considered,
            static_cast<std::size_t>(config.ga_generations) + 1);
  EXPECT_EQ(report.retune.considered,
            report.retune.installed + report.retune.skipped_signature +
                report.retune.skipped_worse + report.retune.rejected_fault +
                report.retune.rejected_slo);
  EXPECT_EQ(report.retune.rejected_fault, 0u);  // no faults armed

  // Re-derive the offline winner with an identically-configured evaluator
  // and GA (same config the driver builds internally). The serving tier's
  // installed genome must land on the same decision signature.
  std::vector<wl::Workload> suite;
  suite.push_back(serving::make_serving_workload("query_dispatch", serving::ServingMode::kBatch));
  tuner::EvalConfig eval_cfg;
  eval_cfg.machine = config.machine;
  eval_cfg.scenario = config.scenario;
  eval_cfg.vm_config.interp_options.engine = config.engine;
  tuner::SuiteEvaluator offline(std::move(suite), eval_cfg);

  ga::GaConfig ga_cfg = tuner::default_ga_config(config.ga_generations, config.ga_seed);
  ga_cfg.population = config.ga_population;
  ga_cfg.patience = 0;
  ga_cfg.seed_individuals = {tuner::genome_from_params(config.initial, /*include_hot_gene=*/true)};
  const tuner::TuneResult tuned = tuner::tune(offline, config.goal, ga_cfg, {});

  const std::uint64_t offline_sig = offline.signature_of(heur::clamp_to_ranges(tuned.best));
  EXPECT_EQ(report.final_signature, offline_sig);
  if (report.retune.installed > 0) {
    EXPECT_LT(report.final_fitness, 1.0);  // strictly beat the defaults
    EXPECT_DOUBLE_EQ(report.final_fitness, tuned.best_fitness);
  }
}

TEST(ServingDeterminism, RecompilationStormStaysInsideSlo) {
  serving::ServingConfig config = small_config();
  // Start from the Table 1 low end — a deliberately bad inliner — so the GA
  // improves immediately and the install path actually fires.
  heur::InlineParams bad;
  bad.callee_max_size = 0;
  bad.always_inline_size = 0;
  bad.max_inline_depth = 0;
  bad.caller_max_size = 0;
  bad.hot_callee_max_size = 0;
  config.initial = heur::clamp_to_ranges(bad);
  config.online_tune = true;
  config.ga_generations = 2;
  config.ga_population = 6;
  config.rollout = serving::Rollout::kAll;  // full-fleet storm at each install
  config.slo_multiplier = 4096.0;           // the envelope the storm must fit

  const serving::WorkloadServeReport report =
      serving::serve_workload("query_dispatch", config);
  ASSERT_EQ(report.records.size(), config.requests);
  ASSERT_GE(report.retune.installed, 1u);  // the storm actually happened
  // Rollout::kAll swaps every instance at the decision point.
  EXPECT_GE(report.installs, static_cast<std::size_t>(config.instances));

  // The regression this tier pins: even with every instance recompiling the
  // whole program mid-stream, no request's latency escapes the envelope.
  ASSERT_GT(report.slo_cycles, 0u);
  EXPECT_EQ(report.slo_violations, 0u);
  EXPECT_LE(report.digest.max(), report.slo_cycles);
}

}  // namespace
}  // namespace ith
