// Chaos for the serving tier: faults mid-request and mid-retune are data,
// not crashes — every request keeps its record slot, chaos runs replay
// bit-identically, and the online controller's quarantine-release path
// un-pins a signature a transient fault would otherwise starve forever.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/inline_params.hpp"
#include "resilience/fault.hpp"
#include "serving/driver.hpp"
#include "serving/online_tuner.hpp"
#include "serving/workloads.hpp"
#include "tuner/evaluator.hpp"

namespace ith {
namespace {

serving::ServingConfig chaos_config(const resilience::FaultPlan* plan) {
  serving::ServingConfig c;
  c.seed = 9;
  c.instances = 2;
  c.requests = 160;
  c.calibration_requests = 32;
  c.threads = 2;
  c.faults = plan;
  c.fault_seed = plan->seed;
  return c;
}

/// A candidate whose inline decisions are guaranteed to differ from the
/// defaults (refuses every callee), so it gets its own decision signature.
heur::InlineParams no_inline_params() {
  heur::InlineParams p = heur::default_params();
  p.callee_max_size = 0;
  p.always_inline_size = 0;
  return p;
}

tuner::SuiteEvaluator make_shadow_evaluator() {
  std::vector<wl::Workload> suite;
  suite.push_back(serving::make_serving_workload("kv_server", serving::ServingMode::kBatch));
  return tuner::SuiteEvaluator(std::move(suite), tuner::EvalConfig{});
}

std::vector<std::vector<int>> quarantine_key(std::uint64_t sig) {
  return {{static_cast<int>(static_cast<std::uint32_t>(sig & 0xffffffffULL)),
           static_cast<int>(static_cast<std::uint32_t>(sig >> 32))}};
}

TEST(ServingChaos, MidRequestFaultsDropNoRequests) {
  resilience::FaultPlan plan;
  plan.rate = 0.1;
  plan.seed = 4;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kVmTrap);
  const serving::ServingConfig config = chaos_config(&plan);

  const serving::WorkloadServeReport report = serving::serve_workload("kv_server", config);

  // Quarantine-without-drops: every request — including those in flight on
  // an instance that faulted and rebuilt — has a complete record.
  ASSERT_EQ(report.records.size(), config.requests);
  EXPECT_GT(report.faulted_requests, 0u);
  EXPECT_LT(report.faulted_requests, config.requests);  // the fleet survives
  ASSERT_GT(report.slo_cycles, 0u);
  std::size_t not_ok = 0;
  for (const serving::RequestRecord& rec : report.records) {
    if (!rec.ok) {
      ++not_ok;
      // A faulted request is charged the penalty (SLO) latency, no more.
      EXPECT_EQ(rec.service, report.slo_cycles);
    } else {
      EXPECT_GT(rec.service, 0u);
    }
  }
  EXPECT_EQ(not_ok, report.faulted_requests);

  // Chaos is replayable: the fault plan is a pure function of (seed, site,
  // key), so a second run reproduces the identical record vector.
  const serving::WorkloadServeReport replay = serving::serve_workload("kv_server", config);
  ASSERT_EQ(replay.records.size(), report.records.size());
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    EXPECT_EQ(report.records[i].latency, replay.records[i].latency) << "request " << i;
    EXPECT_EQ(report.records[i].ok, replay.records[i].ok) << "request " << i;
  }
  EXPECT_EQ(report.faulted_requests, replay.faulted_requests);
}

TEST(ServingChaos, MidRetuneFaultsAreAbsorbed) {
  resilience::FaultPlan plan;
  plan.rate = 0.05;
  plan.seed = 11;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kVmTrap) |
               resilience::FaultPlan::site_bit(resilience::FaultSite::kEvaluator);
  serving::ServingConfig config = chaos_config(&plan);
  config.online_tune = true;
  config.ga_generations = 2;
  config.ga_population = 6;

  const serving::WorkloadServeReport report = serving::serve_workload("kv_server", config);

  // Serving completed under fire: all records present, every retune epoch
  // reached a verdict, and the verdicts account for every consideration.
  ASSERT_EQ(report.records.size(), config.requests);
  EXPECT_EQ(report.retune.considered,
            static_cast<std::size_t>(config.ga_generations) + 1);
  EXPECT_EQ(report.retune.considered,
            report.retune.installed + report.retune.skipped_signature +
                report.retune.skipped_worse + report.retune.rejected_fault +
                report.retune.rejected_slo);
}

TEST(ServingChaos, QuarantinedSignatureStarvesControllerWithoutRetry) {
  tuner::SuiteEvaluator shadow = make_shadow_evaluator();
  const heur::InlineParams candidate = no_inline_params();
  const std::uint64_t sig = shadow.signature_of(candidate);
  ASSERT_NE(sig, shadow.signature_of(heur::default_params()));
  shadow.preload_quarantine(quarantine_key(sig));

  serving::OnlineTunerConfig oc;
  oc.retry_quarantined = false;
  serving::OnlineController controller(shadow, heur::default_params(), oc);

  // The starvation bug this PR fixes: with the quarantine keyed on
  // signature and no release path, every later retune of this genome
  // short-circuits to the penalty result — the controller can never
  // observe it recovering.
  const serving::RetuneDecision first = controller.consider(candidate);
  EXPECT_EQ(first.action, serving::RetuneAction::kRejectedFault);
  EXPECT_FALSE(first.released_quarantine);
  const serving::RetuneDecision second = controller.consider(candidate);
  EXPECT_EQ(second.action, serving::RetuneAction::kRejectedFault);
  EXPECT_TRUE(shadow.is_quarantined(sig));
  EXPECT_EQ(controller.stats().rejected_fault, 2u);
  EXPECT_EQ(controller.stats().quarantine_released, 0u);
  EXPECT_EQ(controller.installed(), heur::default_params());
}

TEST(ServingChaos, QuarantineReleaseUnpinsTheCandidate) {
  tuner::SuiteEvaluator shadow = make_shadow_evaluator();
  const heur::InlineParams candidate = no_inline_params();
  const std::uint64_t sig = shadow.signature_of(candidate);
  shadow.preload_quarantine(quarantine_key(sig));

  serving::OnlineTunerConfig oc;
  oc.retry_quarantined = true;
  serving::OnlineController controller(shadow, heur::default_params(), oc);

  // Gate 2 grants the signature one release + fresh guarded run; with no
  // faults armed the re-run succeeds, so the candidate is judged on its
  // real fitness instead of the penalty.
  const serving::RetuneDecision first = controller.consider(candidate);
  EXPECT_TRUE(first.released_quarantine);
  EXPECT_NE(first.action, serving::RetuneAction::kRejectedFault);
  EXPECT_FALSE(shadow.is_quarantined(sig));
  EXPECT_EQ(controller.stats().quarantine_released, 1u);

  // The release is one-shot per signature: a later consideration hits the
  // (now real) cached result without another release.
  const serving::RetuneDecision second = controller.consider(candidate);
  EXPECT_FALSE(second.released_quarantine);
  EXPECT_NE(second.action, serving::RetuneAction::kRejectedFault);
  EXPECT_EQ(controller.stats().quarantine_released, 1u);
}

TEST(ServingChaos, ReleaseQuarantineEvaluatorContract) {
  tuner::SuiteEvaluator eval = make_shadow_evaluator();
  const heur::InlineParams candidate = no_inline_params();
  const std::uint64_t sig = eval.signature_of(candidate);

  EXPECT_FALSE(eval.is_quarantined(sig));
  EXPECT_FALSE(eval.release_quarantine(sig));  // nothing to release

  eval.preload_quarantine(quarantine_key(sig));
  ASSERT_TRUE(eval.is_quarantined(sig));

  // While quarantined, evaluate() synthesizes the penalty result without
  // running (and without counting as a real evaluation).
  const std::uint64_t before = eval.evaluations_performed();
  const tuner::SuiteEvaluator::Results penalized = eval.evaluate(candidate);
  ASSERT_EQ(penalized->size(), 1u);
  EXPECT_FALSE((*penalized)[0].outcome.ok());
  EXPECT_EQ((*penalized)[0].attempts, 0);
  EXPECT_EQ(eval.evaluations_performed(), before);

  // Release drops both the quarantine entry and the cached penalty, so the
  // next evaluation performs a fresh guarded run that succeeds.
  EXPECT_TRUE(eval.release_quarantine(sig));
  EXPECT_FALSE(eval.is_quarantined(sig));
  EXPECT_FALSE(eval.release_quarantine(sig));  // idempotent: already lifted
  const tuner::SuiteEvaluator::Results fresh = eval.evaluate(candidate);
  ASSERT_EQ(fresh->size(), 1u);
  EXPECT_TRUE((*fresh)[0].outcome.ok());
  EXPECT_GT((*fresh)[0].total_cycles, 0u);
  EXPECT_EQ(eval.evaluations_performed(), before + 1);
}

}  // namespace
}  // namespace ith
