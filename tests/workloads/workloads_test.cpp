// Workload-suite tests: every benchmark program verifies, runs, terminates,
// is deterministic, and has the shape its paper counterpart is meant to model.
#include <gtest/gtest.h>

#include "support/error.hpp"

#include "bytecode/size_estimator.hpp"
#include "bytecode/verifier.hpp"
#include "testing.hpp"
#include "workloads/programs.hpp"
#include "workloads/shapes.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace ith::wl {
namespace {

// --- Registry -----------------------------------------------------------------

TEST(Suite, NamesMatchPaperTables) {
  EXPECT_EQ(spec_names(), (std::vector<std::string>{"compress", "jess", "db", "javac", "mpegaudio",
                                                    "raytrace", "jack"}));
  EXPECT_EQ(dacapo_names(), (std::vector<std::string>{"antlr", "fop", "jython", "pmd", "ps",
                                                      "ipsixql", "pseudojbb"}));
}

TEST(Suite, MakeSuiteSelections) {
  EXPECT_EQ(make_suite("specjvm98").size(), 7u);
  EXPECT_EQ(make_suite("dacapo+jbb").size(), 7u);
  EXPECT_EQ(make_suite("all").size(), 14u);
  EXPECT_THROW(make_suite("nope"), ith::Error);
  EXPECT_THROW(make_workload("nope"), ith::Error);
}

// --- Per-benchmark properties ----------------------------------------------------

class WorkloadProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadProperties, VerifiesAndRuns) {
  const Workload w = make_workload(GetParam());
  EXPECT_EQ(w.name, GetParam());
  EXPECT_FALSE(w.description.empty());
  ASSERT_NO_THROW(bc::verify_program(w.program));
  // Runs to completion (bounded) with a deterministic exit value.
  const std::int64_t v1 = ith::test::run_exit_value(w.program);
  const std::int64_t v2 = ith::test::run_exit_value(make_workload(GetParam()).program);
  EXPECT_EQ(v1, v2);
}

TEST_P(WorkloadProperties, GenerationIsDeterministic) {
  const Workload a = make_workload(GetParam());
  const Workload b = make_workload(GetParam());
  EXPECT_EQ(a.program, b.program);
}

TEST_P(WorkloadProperties, HasCallSites) {
  const Workload w = make_workload(GetParam());
  std::size_t sites = 0;
  for (const auto& m : w.program.methods()) sites += m.call_sites().size();
  EXPECT_GT(sites, 5u) << "inlining needs call sites to act on";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadProperties,
                         ::testing::Values("compress", "jess", "db", "javac", "mpegaudio",
                                           "raytrace", "jack", "antlr", "fop", "jython", "pmd",
                                           "ps", "ipsixql", "pseudojbb"));

// --- Suite-level shape -------------------------------------------------------------

TEST(SuiteShape, DacapoIsCodeRicherThanSpec) {
  std::size_t spec_words = 0, dacapo_words = 0, spec_methods = 0, dacapo_methods = 0;
  for (const Workload& w : make_suite("specjvm98")) {
    spec_words += bc::estimated_program_size(w.program);
    spec_methods += w.program.num_methods();
  }
  for (const Workload& w : make_suite("dacapo+jbb")) {
    dacapo_words += bc::estimated_program_size(w.program);
    dacapo_methods += w.program.num_methods();
  }
  EXPECT_GT(dacapo_words, 2 * spec_words);
  EXPECT_GT(dacapo_methods, 2 * spec_methods);
}

TEST(SuiteShape, SuiteTagsAreConsistent) {
  for (const Workload& w : make_suite("specjvm98")) EXPECT_EQ(w.suite, "specjvm98");
  for (const Workload& w : make_suite("dacapo+jbb")) EXPECT_EQ(w.suite, "dacapo+jbb");
}

// --- Shape combinators --------------------------------------------------------------

TEST(Shapes, EmitExprLeavesOneValue) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Pcg32 rng(seed);
    bc::ProgramBuilder pb("t", 16);
    auto& m = pb.method("main", 0, 2);
    m.const_(3).store(0).const_(4).store(1);
    emit_expr(m, rng, {0, 1}, 1 + static_cast<int>(seed % 17), seed % 3 == 0);
    m.halt();
    pb.entry("main");
    const bc::Program p = pb.build();  // build verifies: depth discipline holds
    EXPECT_NO_THROW(ith::test::run_exit_value(p)) << "seed " << seed;
  }
}

TEST(Shapes, LeafRespectsApproximateLength) {
  Pcg32 rng(7);
  bc::ProgramBuilder pb("t", 0);
  make_leaf(pb, "leaf", 2, 30, rng);
  pb.method("main", 0, 0).const_(1).const_(2).call("leaf", 2).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  const std::size_t n = p.method(p.find_method("leaf")).size();
  EXPECT_GE(n, 25u);
  EXPECT_LE(n, 45u);
}

TEST(Shapes, ChainHasRequestedDepth) {
  Pcg32 rng(7);
  bc::ProgramBuilder pb("t", 0);
  make_leaf(pb, "leaf", 2, 8, rng);
  const std::string top = make_chain(pb, "c", 4, 2, 10, "leaf", rng);
  EXPECT_EQ(top, "c_0");
  pb.method("main", 0, 0).const_(1).const_(2).call(top, 2).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  // c_0 -> c_1 -> c_2 -> c_3 -> leaf all exist.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(p.has_method("c_" + std::to_string(i)));
  EXPECT_NO_THROW(ith::test::run_exit_value(p));
}

TEST(Shapes, DispatcherSelectsByModulo) {
  bc::ProgramBuilder pb("t", 0);
  pb.method("ret10", 2, 2).const_(10).ret();
  pb.method("ret20", 2, 2).const_(20).ret();
  pb.method("ret30", 2, 2).const_(30).ret();
  make_dispatcher(pb, "disp", {"ret10", "ret20", "ret30"});
  auto& m = pb.method("main", 0, 0);
  m.const_(0).const_(0).call("disp", 2);
  m.const_(1).const_(0).call("disp", 2).add();
  m.const_(2).const_(0).call("disp", 2).add();
  m.const_(5).const_(0).call("disp", 2).add();   // 5 mod 3 == 2 -> 30
  m.const_(-1).const_(0).call("disp", 2).add();  // negative -> default (last)
  m.halt();
  pb.entry("main");
  EXPECT_EQ(ith::test::run_exit_value(pb.build()), 10 + 20 + 30 + 30 + 30);
}

TEST(Shapes, RecursiveTerminates) {
  Pcg32 rng(3);
  bc::ProgramBuilder pb("t", 0);
  make_recursive(pb, "rec", 6, rng);
  pb.method("main", 0, 0).const_(10).call("rec", 1).halt();
  pb.entry("main");
  EXPECT_NO_THROW(ith::test::run_exit_value(pb.build()));
}

TEST(Shapes, ColdBlobCallsOnlyGivenCallees) {
  Pcg32 rng(5);
  bc::ProgramBuilder pb("t", 0);
  make_leaf(pb, "a", 1, 6, rng);
  make_leaf(pb, "b", 1, 6, rng);
  make_cold_blob(pb, "blob", 60, 4, {"a", "b"}, rng);
  pb.method("main", 0, 0).const_(1).call("blob", 1).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  const bc::Method& blob = p.method(p.find_method("blob"));
  EXPECT_EQ(blob.call_sites().size(), 4u);
  EXPECT_NO_THROW(ith::test::run_exit_value(p));
}

TEST(Shapes, MidFeedsValueThroughCallees) {
  Pcg32 rng(5);
  bc::ProgramBuilder pb("t", 0);
  make_leaf(pb, "u", 1, 5, rng);
  make_mid(pb, "mid", 2, 12, 2, {"u"}, rng);
  pb.method("main", 0, 0).const_(3).const_(4).call("mid", 2).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  EXPECT_EQ(p.method(p.find_method("mid")).call_sites().size(), 2u);
  EXPECT_NO_THROW(ith::test::run_exit_value(p));
}

// --- run_scale (input size) --------------------------------------------------------

TEST(RunScale, ScalesDynamicWorkNotStaticCode) {
  const Workload small = make_workload("compress", 0.5);
  const Workload base = make_workload("compress", 1.0);
  const Workload big = make_workload("compress", 2.0);
  // Static shape identical.
  EXPECT_EQ(small.program.num_methods(), base.program.num_methods());
  EXPECT_EQ(big.program.total_code_size(), base.program.total_code_size());
  // Dynamic work scales (measured by functional execution instruction count).
  const rt::MachineModel machine = rt::pentium4_model();
  auto instructions = [&machine](const bc::Program& p) {
    ith::test::IdentitySource source(p);
    rt::Interpreter interp(p, machine, source, nullptr);
    return interp.run().instructions;
  };
  const auto s = instructions(small.program);
  const auto b = instructions(base.program);
  const auto g = instructions(big.program);
  EXPECT_LT(s, b);
  EXPECT_LT(b, g);
  EXPECT_NEAR(static_cast<double>(g) / static_cast<double>(b), 2.0, 0.25);
}

TEST(RunScale, DefaultEqualsScaleOne) {
  EXPECT_EQ(make_workload("jess").program, make_workload("jess", 1.0).program);
}

TEST(RunScale, RejectsNonPositive) {
  EXPECT_THROW(make_workload("jess", 0.0), ith::Error);
  EXPECT_THROW(make_workload("jess", -1.0), ith::Error);
}

TEST(RunScale, TinyScaleStillRuns) {
  for (const Workload& w : make_suite("all", 0.01)) {
    EXPECT_NO_THROW(ith::test::run_exit_value(w.program)) << w.name;
  }
}

// --- Synthetic generator (property sweep) ----------------------------------------

class SyntheticSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticSweep, GeneratedProgramsAreWellFormed) {
  SyntheticSpec spec;
  spec.seed = GetParam();
  spec.n_leaves = 4 + static_cast<int>(GetParam() % 9);
  spec.n_chains = static_cast<int>(GetParam() % 4);
  spec.n_dispatchers = static_cast<int>(GetParam() % 3);
  spec.n_blobs = static_cast<int>(GetParam() % 3);
  spec.n_recursive = static_cast<int>(GetParam() % 2);
  spec.hot_iters = 5 + static_cast<std::int64_t>(GetParam() % 20);
  const bc::Program p = make_synthetic(spec);
  ASSERT_NO_THROW(bc::verify_program(p));
  EXPECT_EQ(ith::test::run_exit_value(p), ith::test::run_exit_value(make_synthetic(spec)))
      << "generation and execution must be deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                                           17, 18, 19, 20));

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.n_leaves = 0;
  EXPECT_THROW(make_synthetic(spec), ith::Error);
  spec = SyntheticSpec{};
  spec.leaf_min_len = 10;
  spec.leaf_max_len = 5;
  EXPECT_THROW(make_synthetic(spec), ith::Error);
}

}  // namespace
}  // namespace ith::wl
