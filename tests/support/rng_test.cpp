#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "support/error.hpp"

namespace ith {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123, 7), b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(123, 7), b(124, 7);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiverge) {
  Pcg32 a(123, 7), b(123, 8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBound) {
  Pcg32 rng(1);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Pcg32, BoundedOneAlwaysZero) {
  Pcg32 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Pcg32, BoundedRejectsZero) {
  Pcg32 rng(1);
  EXPECT_THROW(rng.bounded(0), Error);
}

TEST(Pcg32, RangeInclusiveBounds) {
  Pcg32 rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all values of a small range should appear";
}

TEST(Pcg32, RangeSingleton) {
  Pcg32 rng(3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.range(42, 42), 42);
}

TEST(Pcg32, RangeRejectsInverted) {
  Pcg32 rng(1);
  EXPECT_THROW(rng.range(2, 1), Error);
}

TEST(Pcg32, RangeWideSpan) {
  Pcg32 rng(4);
  const std::int64_t lo = -5'000'000'000LL, hi = 5'000'000'000LL;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32, UniformMeanNearHalf) {
  Pcg32 rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Pcg32, ChanceExtremes) {
  Pcg32 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Pcg32, ChanceApproximatesProbability) {
  Pcg32 rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Pcg32, GaussianMomentsRoughlyStandard) {
  Pcg32 rng(9);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.1);
}

TEST(Pcg32, SplitProducesIndependentStream) {
  Pcg32 parent(11);
  Pcg32 child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, SplitIsDeterministic) {
  Pcg32 p1(11), p2(11);
  Pcg32 c1 = p1.split(), c2 = p2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Pcg32, UniformIntervalScaled) {
  Pcg32 rng(13);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

}  // namespace
}  // namespace ith
