#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace ith {
namespace {

TEST(Mean, Basic) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Mean, SingleElement) {
  const std::vector<double> v = {7.5};
  EXPECT_DOUBLE_EQ(mean(v), 7.5);
}

TEST(Mean, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW(mean(v), Error);
}

TEST(Geomean, Basic) {
  const std::vector<double> v = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(Geomean, MatchesPaperFormula) {
  // |S|-th root of the product.
  const std::vector<double> v = {2.0, 8.0, 4.0};
  EXPECT_NEAR(geomean(v), std::cbrt(2.0 * 8.0 * 4.0), 1e-12);
}

TEST(Geomean, ScaleInvariantRatio) {
  // geomean(k*x) == k * geomean(x): why normalizing by the default
  // heuristic doesn't change the GA's ranking.
  const std::vector<double> x = {1.5, 0.7, 2.2, 0.9};
  std::vector<double> kx;
  for (double v : x) kx.push_back(3.0 * v);
  EXPECT_NEAR(geomean(kx), 3.0 * geomean(x), 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  const std::vector<double> v = {1.0, 0.0};
  EXPECT_THROW(geomean(v), Error);
  const std::vector<double> w = {1.0, -2.0};
  EXPECT_THROW(geomean(w), Error);
}

TEST(Geomean, LessSensitiveToOutliersThanMean) {
  const std::vector<double> v = {1.0, 1.0, 1.0, 100.0};
  EXPECT_LT(geomean(v), mean(v));
}

TEST(Stddev, KnownValue) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(v), 2.138089935299395, 1e-12);  // sample stddev
}

TEST(Stddev, RequiresTwoSamples) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(stddev(v), Error);
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(MinMax, Basic) {
  const std::vector<double> v = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 3.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, VarianceZeroWithOneSample) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, EmptyMeanThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), Error);
}

TEST(PercentReduction, Basic) {
  EXPECT_NEAR(percent_reduction(0.83), 17.0, 1e-9);
  EXPECT_NEAR(percent_reduction(1.0), 0.0, 1e-9);
  EXPECT_NEAR(percent_reduction(1.05), -5.0, 1e-9);  // degradation is negative
}

}  // namespace
}  // namespace ith
