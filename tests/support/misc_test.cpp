// Tests for ThreadPool, Table, CsvWriter, CliParser and env helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace ith {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw Error("index 3");
                                 }),
               Error);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 500; ++i) {
    fs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(count.load(), 500);
}

// --- Table ------------------------------------------------------------------

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, EmptyHeadersThrow) { EXPECT_THROW(Table({}), Error); }

TEST(Table, CellFormatters) {
  EXPECT_EQ(cell(1.23456, 2), "1.23");
  EXPECT_EQ(cell(static_cast<long long>(42)), "42");
  EXPECT_EQ(cell_ratio(0.8333), "0.833");
  EXPECT_EQ(cell_percent(17.0), "+17.0%");
  EXPECT_EQ(cell_percent(-5.5), "-5.5%");
}

TEST(Table, AlignmentPadsColumns) {
  Table t({"n", "v"}, {Align::kLeft, Align::kRight});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.render(os);
  // Right-aligned "1" is padded on the left to the width of "22".
  EXPECT_NE(os.str().find("|  1 |"), std::string::npos);
}

// --- CsvWriter ----------------------------------------------------------------

TEST(Csv, PlainFields) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("with\nnewline"), "\"with\nnewline\"");
}

// --- CliParser ----------------------------------------------------------------

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=5", "--name=x"};
  CliParser cli(3, argv);
  EXPECT_EQ(cli.get_int_or("alpha", 0), 5);
  EXPECT_EQ(cli.get_or("name", ""), "x");
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--alpha", "5"};
  CliParser cli(3, argv);
  EXPECT_EQ(cli.get_int_or("alpha", 0), 5);
}

TEST(Cli, BareBooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  CliParser cli(2, argv);
  EXPECT_TRUE(cli.get_bool_or("verbose", false));
  EXPECT_FALSE(cli.get_bool_or("quiet", false));
}

TEST(Cli, Positionals) {
  const char* argv[] = {"prog", "input.txt", "--k=1", "output.txt"};
  CliParser cli(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(Cli, MalformedIntThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  CliParser cli(2, argv);
  EXPECT_THROW(cli.get_int_or("n", 0), Error);
}

TEST(Cli, DoubleAndDefaults) {
  const char* argv[] = {"prog", "--x=1.5"};
  CliParser cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double_or("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(cli.get_double_or("y", 2.5), 2.5);
}

// --- env ----------------------------------------------------------------------

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("ITH_TEST_ENV_VAR");
  EXPECT_EQ(env_or("ITH_TEST_ENV_VAR", "dflt"), "dflt");
  EXPECT_EQ(env_int_or("ITH_TEST_ENV_VAR", 7), 7);
}

TEST(Env, ReadsValue) {
  ::setenv("ITH_TEST_ENV_VAR", "123", 1);
  EXPECT_EQ(env_or("ITH_TEST_ENV_VAR", "dflt"), "123");
  EXPECT_EQ(env_int_or("ITH_TEST_ENV_VAR", 7), 123);
  ::unsetenv("ITH_TEST_ENV_VAR");
}

TEST(Env, MalformedIntThrows) {
  ::setenv("ITH_TEST_ENV_VAR", "12x", 1);
  EXPECT_THROW(env_int_or("ITH_TEST_ENV_VAR", 7), Error);
  ::unsetenv("ITH_TEST_ENV_VAR");
}

}  // namespace
}  // namespace ith
