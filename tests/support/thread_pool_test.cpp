// ThreadPool::parallel_for error handling: exceptions from worker indices
// must propagate to the caller (exactly one wins), every non-throwing index
// must still have run by the time parallel_for returns, and the pool must
// stay usable afterwards.
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace ith {
namespace {

TEST(ThreadPoolErrors, ParallelForPropagatesExceptionUnderContention) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  bool caught = false;
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i % 8 == 3) throw Error("worker " + std::to_string(i) + " failed");
    });
  } catch (const Error& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
  }
  EXPECT_TRUE(caught);
  // parallel_for blocks for ALL indices even when some throw: no task may
  // still be running (or silently skipped) once it returns.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolErrors, PoolUsableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(8, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The workers survived the failed batch.
  std::atomic<int> ran{0};
  pool.parallel_for(32, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolErrors, NonStdExceptionIsStillPropagated) {
  ThreadPool pool(2);
  bool caught = false;
  try {
    pool.parallel_for(4, [](std::size_t i) {
      if (i == 2) throw 17;  // not derived from std::exception
    });
  } catch (int v) {
    caught = true;
    EXPECT_EQ(v, 17);
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace ith
