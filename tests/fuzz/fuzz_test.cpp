// Fuzzing subsystem correctness: the adversarial generator only emits
// verified programs and is byte-deterministic in its seed, the four-tier
// differential oracle is deterministic and clean over a seed block, and an
// intentionally planted miscompile is caught, bisected to the carrying
// pass, and shrunk to a handful of instructions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "bytecode/binary.hpp"
#include "bytecode/builder.hpp"
#include "bytecode/verifier.hpp"
#include "fuzz/bisect.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "support/error.hpp"

namespace ith::fuzz {
namespace {

TEST(Generator, ProducesVerifiedNonTrivialPrograms) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    GeneratorSpec spec;
    spec.seed = seed;
    const bc::Program prog = generate_adversarial(spec);
    // generate_adversarial verifies internally; re-check the contract here
    // so a regression fails with the verifier's message, not deep inside.
    EXPECT_NO_THROW(bc::verify_program(prog)) << "seed " << seed;
    EXPECT_GE(prog.num_methods(),
              static_cast<std::size_t>(spec.min_methods) + 1)  // + entry
        << "seed " << seed;
    EXPECT_GE(prog.total_code_size(), 50u) << "seed " << seed;
  }
}

TEST(Generator, ByteIdenticalForEqualSeeds) {
  GeneratorSpec spec;
  spec.seed = 7;
  const std::vector<std::uint8_t> first = bc::to_binary(generate_adversarial(spec));
  const std::vector<std::uint8_t> second = bc::to_binary(generate_adversarial(spec));
  EXPECT_EQ(first, second);

  spec.seed = 8;
  EXPECT_NE(bc::to_binary(generate_adversarial(spec)), first)
      << "different seeds should not collide on identical programs";
}

TEST(Oracle, VerdictIsDeterministic) {
  GeneratorSpec spec;
  spec.seed = 7;
  const bc::Program prog = generate_adversarial(spec);
  OracleConfig config;
  config.seed = 7;
  const DifferentialOracle first(config);
  const DifferentialOracle second(config);
  const OracleVerdict a = first.check(prog);
  const OracleVerdict b = second.check(prog);
  EXPECT_EQ(a.diverged, b.diverged);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(Oracle, CleanOverSeedBlock) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    GeneratorSpec spec;
    spec.seed = seed;
    const bc::Program prog = generate_adversarial(spec);
    OracleConfig config;
    config.seed = seed;
    const DifferentialOracle oracle(config);
    const OracleVerdict verdict = oracle.check(prog);
    if (verdict.reference_failed) continue;  // too hot to fuzz, not a bug
    EXPECT_FALSE(verdict.diverged) << "seed " << seed << ": " << verdict.summary();
  }
}

TEST(Oracle, BuiltinEdgeCasesAreClean) {
  const auto cases = builtin_edge_cases();
  ASSERT_EQ(cases.size(), 3u);
  EXPECT_EQ(cases[0].first, "edge_empty_body_leaf");
  EXPECT_EQ(cases[1].first, "edge_max_stack_boundary");
  EXPECT_EQ(cases[2].first, "edge_self_recursive");
  for (const auto& [name, prog] : cases) {
    EXPECT_NO_THROW(bc::verify_program(prog)) << name;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      OracleConfig config;
      config.seed = seed;
      const OracleVerdict verdict = DifferentialOracle(config).check(prog);
      EXPECT_FALSE(verdict.reference_failed) << name << " oracle seed " << seed;
      EXPECT_FALSE(verdict.diverged)
          << name << " oracle seed " << seed << ": " << verdict.summary();
    }
  }
}

/// A program whose observable output depends on a `const; const; add`
/// triple the sound folder must skip (the sum overflows int32) — exactly
/// the residue the kFoldOverflow plant miscompiles — surrounded by enough
/// benign structure that shrinking has real work to do.
bc::Program make_planted_bug_program() {
  constexpr std::int64_t kMax32 = 2147483647;
  bc::ProgramBuilder pb("planted", 8);
  pb.method("square", 1, 1).load(0).load(0).mul().ret();
  auto& m = pb.method("main", 0, 2);
  // Benign loop: g[0] = sum of squares 0..4.
  m.const_(5).store(0).const_(0).store(1);
  m.label("head");
  m.load(0).jz("done");
  m.load(1).load(0).call("square", 1).add().store(1);
  m.load(0).const_(1).sub().store(0);
  m.jmp("head");
  m.label("done");
  m.const_(0).load(1).gstore();
  // The payload: g[3] = kMax32 + 10 (does not fit int32; the sound folder
  // leaves the triple alone, the planted bug clamps it).
  m.const_(3).const_(kMax32).const_(10).add().gstore();
  // More benign traffic after the payload.
  m.const_(5).const_(4).call("square", 1).gstore();
  m.const_(0).halt();
  pb.entry("main");
  return pb.build();
}

TEST(PlantedBug, CaughtBisectedToFoldingAndShrunk) {
  const bc::Program prog = make_planted_bug_program();
  bc::verify_program(prog);

  OracleConfig config;
  config.seed = 3;
  config.planted_bug = PlantedBug::kFoldOverflow;
  config.forced_options = opt::OptimizerOptions{};  // all passes on
  const DifferentialOracle oracle(config);

  // Caught: the oracle reports the miscompiled global.
  const OracleVerdict verdict = oracle.check(prog);
  ASSERT_TRUE(verdict.diverged) << verdict.summary();

  // Bisected: the plant rides on enable_folding, so toggling that flag —
  // and only that flag — must make the divergence disappear.
  const BisectResult bisect = bisect_passes(prog, oracle);
  EXPECT_TRUE(bisect.reproduced);
  ASSERT_EQ(bisect.guilty.size(), 1u) << bisect.to_string();
  EXPECT_EQ(bisect.guilty[0], "folding");

  // Shrunk: greedy deletion keeps only the payload.
  ShrinkStats stats;
  const bc::Program shrunk = shrink_program(
      prog, [&](const bc::Program& p) { return oracle.check(p).diverged; }, &stats);
  EXPECT_TRUE(oracle.check(shrunk).diverged);
  EXPECT_LE(shrunk.total_code_size(), 10u)
      << "shrunk repro still has " << shrunk.total_code_size() << " instructions after "
      << stats.rounds << " round(s)";
  EXPECT_LT(stats.final_instructions, stats.initial_instructions);
}

TEST(PlantedBug, InertWhenCarryingPassDisabled) {
  const bc::Program prog = make_planted_bug_program();
  OracleConfig config;
  config.seed = 3;
  config.planted_bug = PlantedBug::kFoldOverflow;
  opt::OptimizerOptions options;
  options.enable_folding = false;
  config.forced_options = options;
  const OracleVerdict verdict = DifferentialOracle(config).check(prog);
  EXPECT_FALSE(verdict.diverged) << verdict.summary();
}

TEST(Shrink, RejectsProgramThatDoesNotReproduce) {
  const bc::Program prog = make_planted_bug_program();
  EXPECT_THROW(shrink_program(prog, [](const bc::Program&) { return false; }, nullptr),
               ith::Error);
}

TEST(Campaign, SeedWalkReportsCleanRun) {
  CampaignConfig config;
  config.seed_begin = 1;
  config.seed_end = 10;
  config.write_repros = false;
  const CampaignReport report = run_campaign(config);
  EXPECT_EQ(report.seeds_run, 10u);
  EXPECT_EQ(report.corpus_replayed, 3u);  // built-in edge cases
  EXPECT_GT(report.total_instructions_generated, 0u);
  EXPECT_TRUE(report.clean()) << report.findings.size() << " finding(s)";
}

}  // namespace
}  // namespace ith::fuzz
