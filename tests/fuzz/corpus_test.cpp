// Regression corpus replay: every checked-in .mbc repro in
// tests/fuzz/corpus must load, verify, and pass the differential oracle.
// The corpus is seeded with the three hand-written edge cases; any repro a
// future fuzzing campaign shrinks out of a real bug lands here too, so a
// fixed bug stays fixed.
#include <gtest/gtest.h>

#include <algorithm>

#include "bytecode/binary.hpp"
#include "bytecode/verifier.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/oracle.hpp"

#ifndef ITH_FUZZ_CORPUS_DIR
#error "ITH_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace ith::fuzz {
namespace {

TEST(Corpus, ContainsTheSeededEdgeCases) {
  const auto entries = load_corpus(ITH_FUZZ_CORPUS_DIR);
  ASSERT_GE(entries.size(), 3u) << "corpus directory missing or empty";
  auto has = [&](const std::string& name) {
    return std::any_of(entries.begin(), entries.end(),
                       [&](const auto& e) { return e.first == name; });
  };
  EXPECT_TRUE(has("edge_empty_body_leaf"));
  EXPECT_TRUE(has("edge_max_stack_boundary"));
  EXPECT_TRUE(has("edge_self_recursive"));
  // Fusion-adversarial repros: fusible pairs split across jump targets,
  // back edges and OSR entries landing inside fused windows, and deep
  // call+return chains (see tests/runtime/fusion_test.cpp for the shapes).
  EXPECT_TRUE(has("fusion_split_jump"));
  EXPECT_TRUE(has("fusion_backedge_interior"));
  EXPECT_TRUE(has("fusion_osr_midpattern"));
  EXPECT_TRUE(has("fusion_ret_chain"));
  // Immediate-operand forms (PR 10): OSR landing mid-window of an imm
  // guard, a back edge into the interior of an operand-captured window, and
  // a loop whose branch delta/accounting data live in the side-pool.
  EXPECT_TRUE(has("fusion_osr_imm_window"));
  EXPECT_TRUE(has("fusion_backedge_imm_interior"));
  EXPECT_TRUE(has("fusion_sidepool_operand"));
}

TEST(Corpus, EveryEntryVerifiesAndPassesTheOracle) {
  for (const auto& [name, prog] : load_corpus(ITH_FUZZ_CORPUS_DIR)) {
    EXPECT_NO_THROW(bc::verify_program(prog)) << name;
    for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
      OracleConfig config;
      config.seed = seed;
      const OracleVerdict verdict = DifferentialOracle(config).check(prog);
      EXPECT_FALSE(verdict.reference_failed)
          << name << " oracle seed " << seed << ": " << verdict.reference_error;
      EXPECT_FALSE(verdict.diverged)
          << name << " oracle seed " << seed << ": " << verdict.summary();
    }
  }
}

TEST(Corpus, RoundTripsThroughTheBinaryFormat) {
  // Checked-in files were produced by write_corpus_entry; loading and
  // re-serializing must agree with what the built-ins produce today, so
  // the corpus cannot silently drift from the generator's edge cases.
  const auto entries = load_corpus(ITH_FUZZ_CORPUS_DIR);
  for (const auto& [name, prog] : builtin_edge_cases()) {
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const auto& e) { return e.first == name; });
    ASSERT_NE(it, entries.end()) << name;
    EXPECT_EQ(bc::to_binary(it->second), bc::to_binary(prog)) << name;
  }
}

}  // namespace
}  // namespace ith::fuzz
