// VirtualMachine tests: scenario behaviour, tiered/adaptive compilation,
// the paper's two-iteration methodology, and time accounting.
#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

#include "heuristics/heuristic.hpp"
#include "testing.hpp"
#include "workloads/suite.hpp"

namespace ith::vm {
namespace {

RunResult run_vm(const bc::Program& p, Scenario sc, heur::InlineHeuristic& h, int iterations = 2,
                 VmConfig cfg = {}) {
  const rt::MachineModel machine = rt::pentium4_model();
  cfg.scenario = sc;
  VirtualMachine m(p, machine, h, cfg);
  return m.run(iterations);
}

TEST(Vm, OptScenarioCompilesEverythingInvokedAtOptTier) {
  const bc::Program p = ith::test::make_loop_program(20);
  heur::NeverInlineHeuristic h;
  const RunResult r = run_vm(p, Scenario::kOpt, h);
  EXPECT_EQ(r.methods_opt_compiled, p.num_methods());
  EXPECT_EQ(r.methods_baseline_compiled, 0u);
  EXPECT_EQ(r.recompilations, 0u);
}

TEST(Vm, AdaptScenarioStartsBaseline) {
  const bc::Program p = ith::test::make_loop_program(20);
  heur::NeverInlineHeuristic h;
  VmConfig cfg;
  cfg.hot_method_threshold = 1'000'000;  // never hot
  const RunResult r = run_vm(p, Scenario::kAdapt, h, 2, cfg);
  EXPECT_EQ(r.methods_baseline_compiled, p.num_methods());
  EXPECT_EQ(r.methods_opt_compiled, 0u);
}

TEST(Vm, AdaptRecompilesHotMethods) {
  const bc::Program p = ith::test::make_loop_program(500);
  heur::JikesHeuristic h;
  VmConfig cfg;
  cfg.hot_method_threshold = 50;
  cfg.rehot_multiplier = 0;
  const RunResult r = run_vm(p, Scenario::kAdapt, h, 2, cfg);
  EXPECT_GT(r.recompilations, 0u);
  EXPECT_GT(r.methods_opt_compiled, 0u);
}

TEST(Vm, MultiLevelRecompilationTriggersOnVeryHotMethods) {
  const bc::Program p = ith::test::make_loop_program(2000);
  heur::JikesHeuristic h;
  VmConfig cfg;
  cfg.hot_method_threshold = 50;
  cfg.rehot_multiplier = 4;
  const RunResult r = run_vm(p, Scenario::kAdapt, h, 2, cfg);

  VmConfig cfg_single = cfg;
  cfg_single.rehot_multiplier = 0;
  heur::JikesHeuristic h2;
  const RunResult r_single = run_vm(p, Scenario::kAdapt, h2, 2, cfg_single);
  EXPECT_GT(r.recompilations, r_single.recompilations);
}

TEST(Vm, RecompilationLadderReusesCachedAnalyses) {
  // The session-persistent PassManager carries program-scope analyses
  // across the O1->O2 ladder: recompiling a hot method must *hit* the
  // cached call graph, never recompute it.
  const bc::Program p = ith::test::make_loop_program(2000);
  heur::JikesHeuristic h;
  const rt::MachineModel machine = rt::pentium4_model();
  obs::MemorySink sink;
  obs::Context ctx(&sink, obs::kAllCategories);
  VmConfig cfg;
  cfg.scenario = Scenario::kAdapt;
  cfg.hot_method_threshold = 50;
  cfg.rehot_multiplier = 4;
  cfg.obs = &ctx;
  VirtualMachine m(p, machine, h, cfg);
  const RunResult r = m.run(2);
  ASSERT_GT(r.recompilations, 0u) << "the ladder never fired; thresholds need retuning";

  const opt::AnalysisStats& s = m.pass_manager().analyses().stats();
  EXPECT_GT(s.hits, 0u);
  const auto cg = static_cast<unsigned>(opt::AnalysisId::kCallGraph);
  EXPECT_GT(s.hits_by_kind[cg], 0u) << "O2 recompile must reuse the O1 call graph";
  EXPECT_LE(s.misses_by_kind[cg], p.num_methods())
      << "call graph computed more than once per method";

  // The same reuse is visible to dashboards through the obs counters.
  ctx.flush();
  std::int64_t counter_hits = -1;
  for (const obs::Event& e : sink.events()) {
    if (e.phase != obs::Phase::kCounter) continue;
    for (const obs::Arg& arg : e.args) {
      if (arg.key == "opt.analysis_hits") counter_hits = std::get<std::int64_t>(arg.value);
    }
  }
  EXPECT_GT(counter_hits, 0) << "opt.analysis_hits counter missing from the trace";
}

TEST(Vm, ExplicitPipelineOverridesTheBooleanOptions) {
  // VmConfig::pipeline is the new-style configuration surface: a pipeline
  // with inlining stripped must behave like the legacy enable_inlining=false.
  const bc::Program p = ith::test::make_loop_program(100);
  heur::JikesHeuristic h1, h2;
  VmConfig with_pipeline;
  with_pipeline.pipeline = opt::PipelineDesc::parse("fixpoint(fold,branch_simplify):6");
  const RunResult a = run_vm(p, Scenario::kOpt, h1, 2, with_pipeline);

  VmConfig legacy;
  legacy.opt_options.enable_inlining = false;
  legacy.opt_options.enable_tail_recursion = false;
  legacy.opt_options.enable_copyprop = false;
  legacy.opt_options.enable_dce = false;
  legacy.opt_options.enable_algebraic = false;
  legacy.opt_options.enable_compare_fusion = false;
  const RunResult b = run_vm(p, Scenario::kOpt, h2, 2, legacy);
  EXPECT_EQ(a.running_cycles, b.running_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST(Vm, LazyCompilationSkipsUninvokedMethods) {
  // A method that exists but is never called must never be compiled.
  bc::ProgramBuilder pb("lazy", 0);
  pb.method("unused", 0, 0).ret_const(1);
  pb.method("main", 0, 0).const_(7).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  heur::JikesHeuristic h;
  const RunResult r = run_vm(p, Scenario::kOpt, h);
  EXPECT_EQ(r.methods_opt_compiled, 1u) << "only main";
}

TEST(Vm, TotalIsFirstIterationRunningIsBestLater) {
  const bc::Program p = ith::test::make_loop_program(200);
  heur::JikesHeuristic h;
  const RunResult r = run_vm(p, Scenario::kOpt, h, 3);
  ASSERT_EQ(r.iterations.size(), 3u);
  EXPECT_EQ(r.total_cycles, r.iterations[0].exec.cycles + r.iterations[0].compile_cycles);
  EXPECT_EQ(r.running_cycles,
            std::min(r.iterations[1].exec.cycles, r.iterations[2].exec.cycles));
}

TEST(Vm, SecondIterationNeedsNoCompilationUnderOpt) {
  const bc::Program p = ith::test::make_loop_program(100);
  heur::JikesHeuristic h;
  const RunResult r = run_vm(p, Scenario::kOpt, h, 2);
  EXPECT_GT(r.iterations[0].compile_cycles, 0u);
  EXPECT_EQ(r.iterations[1].compile_cycles, 0u);
}

TEST(Vm, AdaptTotalCheaperCompilationThanOptOnColdCode) {
  // A program that runs briefly: Adapt should spend far less on compilation.
  const bc::Program p = wl::make_workload("antlr").program;
  heur::JikesHeuristic h1, h2;
  const RunResult opt = run_vm(p, Scenario::kOpt, h1);
  const RunResult adapt = run_vm(p, Scenario::kAdapt, h2);
  EXPECT_LT(adapt.iterations[0].compile_cycles, opt.iterations[0].compile_cycles / 2);
  EXPECT_LT(adapt.total_cycles, opt.total_cycles);
}

TEST(Vm, OptRunningBeatsAdaptRunningWithColdCode) {
  // With the heuristic held fixed (no inlining anywhere), the only
  // difference is tiering: cold methods stay at the baseline tier under
  // Adapt, so its steady-state running time can't beat Opt's. (With a real
  // heuristic Adapt may legitimately win running time, because its hot-site
  // Figure 4 path can inline more than Opt's Figure 3 chain.)
  const bc::Program p = wl::make_workload("jess").program;
  heur::NeverInlineHeuristic h1, h2;
  const RunResult opt = run_vm(p, Scenario::kOpt, h1);
  const RunResult adapt = run_vm(p, Scenario::kAdapt, h2);
  EXPECT_LE(opt.running_cycles, adapt.running_cycles);
}

TEST(Vm, InliningReducesRunningTime) {
  const bc::Program p = ith::test::make_loop_program(500);
  heur::NeverInlineHeuristic never;
  heur::AlwaysInlineHeuristic always;
  const RunResult off = run_vm(p, Scenario::kOpt, never);
  const RunResult on = run_vm(p, Scenario::kOpt, always);
  EXPECT_LT(on.running_cycles, off.running_cycles);
  EXPECT_GT(on.opt_stats.inline_stats.sites_inlined, 0u);
}

TEST(Vm, AggressiveInliningIncreasesCompileTime) {
  const bc::Program p = wl::make_workload("javac").program;
  heur::NeverInlineHeuristic never;
  heur::AlwaysInlineHeuristic always;
  const RunResult off = run_vm(p, Scenario::kOpt, never);
  const RunResult on = run_vm(p, Scenario::kOpt, always);
  EXPECT_GT(on.iterations[0].compile_cycles, off.iterations[0].compile_cycles);
  EXPECT_GT(on.code_words_emitted, off.code_words_emitted);
}

TEST(Vm, DeterministicAcrossRuns) {
  const bc::Program p = wl::make_workload("db").program;
  heur::JikesHeuristic h1, h2;
  const RunResult a = run_vm(p, Scenario::kAdapt, h1, 2);
  const RunResult b = run_vm(p, Scenario::kAdapt, h2, 2);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.running_cycles, b.running_cycles);
  EXPECT_EQ(a.code_words_emitted, b.code_words_emitted);
}

TEST(Vm, ResultsIndependentAcrossVmInstances) {
  // Running one VM must not perturb another's results (no shared state).
  const bc::Program p = ith::test::make_loop_program(100);
  heur::JikesHeuristic h1;
  const RunResult first = run_vm(p, Scenario::kOpt, h1);
  {
    heur::AlwaysInlineHeuristic h_noise;
    run_vm(p, Scenario::kOpt, h_noise);
  }
  heur::JikesHeuristic h2;
  const RunResult again = run_vm(p, Scenario::kOpt, h2);
  EXPECT_EQ(first.total_cycles, again.total_cycles);
}

TEST(Vm, RequiresAtLeastOneIteration) {
  const bc::Program p = ith::test::make_add_program();
  heur::JikesHeuristic h;
  const rt::MachineModel machine = rt::pentium4_model();
  VirtualMachine m(p, machine, h, VmConfig{});
  EXPECT_THROW(m.run(0), ith::Error);
}

TEST(Vm, SingleIterationRunningEqualsFirstExec) {
  const bc::Program p = ith::test::make_add_program();
  heur::JikesHeuristic h;
  const RunResult r = run_vm(p, Scenario::kOpt, h, 1);
  EXPECT_EQ(r.running_cycles, r.iterations[0].exec.cycles);
}

TEST(Vm, ExitValueUnaffectedByHeuristic) {
  const bc::Program p = ith::test::make_loop_program(50);
  heur::NeverInlineHeuristic never;
  heur::AlwaysInlineHeuristic always;
  const RunResult a = run_vm(p, Scenario::kOpt, never);
  const RunResult b = run_vm(p, Scenario::kOpt, always);
  EXPECT_EQ(a.iterations[0].exec.exit_value, b.iterations[0].exec.exit_value);
  EXPECT_EQ(a.iterations[0].exec.exit_value, ith::test::run_exit_value(p));
}

TEST(Vm, IcacheCanBeDisabled) {
  const bc::Program p = ith::test::make_loop_program(100);
  heur::JikesHeuristic h;
  VmConfig cfg;
  cfg.simulate_icache = false;
  const RunResult r = run_vm(p, Scenario::kOpt, h, 2, cfg);
  EXPECT_EQ(r.iterations[0].exec.icache_probes, 0u);
}

TEST(Vm, ScenarioNames) {
  EXPECT_STREQ(scenario_name(Scenario::kAdapt), "Adapt");
  EXPECT_STREQ(scenario_name(Scenario::kOpt), "Opt");
}

}  // namespace
}  // namespace ith::vm
