// Systematic opcode-semantics matrix: every arithmetic/comparison opcode
// against a grid of operand pairs (including the signed edge cases), run
// three ways that must agree: (1) interpreted through locals (unfoldable),
// (2) interpreted as constants, (3) constant-folded by the optimizer and
// then interpreted. Pins down the "total semantics" contract shared by the
// interpreter and the folder.
#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "bytecode/builder.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "heuristics/heuristic.hpp"
#include "opt/optimizer.hpp"
#include "testing.hpp"

namespace ith::rt {
namespace {

constexpr std::int64_t kMin32 = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kMax32 = std::numeric_limits<std::int32_t>::max();

/// The reference semantics (wrapping add/sub/mul; total div/mod).
std::int64_t model(bc::Op op, std::int64_t a, std::int64_t b) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case bc::Op::kAdd: return static_cast<std::int64_t>(ua + ub);
    case bc::Op::kSub: return static_cast<std::int64_t>(ua - ub);
    case bc::Op::kMul: return static_cast<std::int64_t>(ua * ub);
    case bc::Op::kDiv: return b == 0 ? 0 : (b == -1 ? static_cast<std::int64_t>(0 - ua) : a / b);
    case bc::Op::kMod: return (b == 0 || b == -1) ? 0 : a % b;
    case bc::Op::kCmpLt: return a < b ? 1 : 0;
    case bc::Op::kCmpLe: return a <= b ? 1 : 0;
    case bc::Op::kCmpEq: return a == b ? 1 : 0;
    case bc::Op::kCmpNe: return a != b ? 1 : 0;
    default: return 0;
  }
}

void emit_op(bc::MethodBuilder& m, bc::Op op) {
  switch (op) {
    case bc::Op::kAdd: m.add(); break;
    case bc::Op::kSub: m.sub(); break;
    case bc::Op::kMul: m.mul(); break;
    case bc::Op::kDiv: m.div(); break;
    case bc::Op::kMod: m.mod(); break;
    case bc::Op::kCmpLt: m.cmplt(); break;
    case bc::Op::kCmpLe: m.cmple(); break;
    case bc::Op::kCmpEq: m.cmpeq(); break;
    case bc::Op::kCmpNe: m.cmpne(); break;
    default: FAIL() << "unsupported op in matrix";
  }
}

bc::Program via_locals(bc::Op op, std::int64_t a, std::int64_t b) {
  bc::ProgramBuilder pb("m");
  auto& m = pb.method("main", 0, 2);
  m.const_(a).store(0).const_(b).store(1);
  m.load(0).load(1);
  emit_op(m, op);
  m.halt();
  pb.entry("main");
  return pb.build();
}

bc::Program via_constants(bc::Op op, std::int64_t a, std::int64_t b) {
  bc::ProgramBuilder pb("m");
  auto& m = pb.method("main", 0, 0);
  m.const_(a).const_(b);
  emit_op(m, op);
  m.halt();
  pb.entry("main");
  return pb.build();
}

class OpcodeMatrix : public ::testing::TestWithParam<bc::Op> {};

TEST_P(OpcodeMatrix, InterpreterFolderAndModelAgree) {
  const bc::Op op = GetParam();
  const std::int64_t operands[] = {0, 1, -1, 2, -2, 7, -7, 1000, -1000, kMax32, kMin32};
  heur::NeverInlineHeuristic h;
  for (std::int64_t a : operands) {
    for (std::int64_t b : operands) {
      const std::int64_t want = model(op, a, b);
      EXPECT_EQ(ith::test::run_exit_value(via_locals(op, a, b)), want)
          << bc::op_info(op).name << "(" << a << ", " << b << ") via locals";
      const bc::Program constant = via_constants(op, a, b);
      EXPECT_EQ(ith::test::run_exit_value(constant), want)
          << bc::op_info(op).name << "(" << a << ", " << b << ") via constants";

      // Constant-folded: the optimizer must not change the value (the
      // folded result may exceed the 32-bit immediate field, in which case
      // folding is skipped — still the same value at runtime).
      const opt::Optimizer optimizer(constant, h);
      bc::Program folded = constant;
      folded.mutable_method(folded.entry()) = optimizer.optimize(folded.entry()).body.method;
      EXPECT_EQ(ith::test::run_exit_value(folded), want)
          << bc::op_info(op).name << "(" << a << ", " << b << ") folded";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBinaryOps, OpcodeMatrix,
                         ::testing::Values(bc::Op::kAdd, bc::Op::kSub, bc::Op::kMul, bc::Op::kDiv,
                                           bc::Op::kMod, bc::Op::kCmpLt, bc::Op::kCmpLe,
                                           bc::Op::kCmpEq, bc::Op::kCmpNe),
                         [](const ::testing::TestParamInfo<bc::Op>& info) {
                           return std::string(bc::op_info(info.param).name);
                         });

TEST(OpcodeMatrix, EveryOpcodeAppearsInTheDifferentialFuzzCorpus) {
  // The differential oracle is only as strong as the programs it sees:
  // every opcode must occur in at least one corpus entry of the standard
  // smoke-fuzz seed block (generated seeds plus the built-in edge cases),
  // or a miscompile of that opcode could never be caught.
  std::array<bool, static_cast<std::size_t>(bc::kNumOps)> seen{};
  const auto scan = [&seen](const bc::Program& prog) {
    for (std::size_t m = 0; m < prog.num_methods(); ++m) {
      for (const bc::Instruction& insn : prog.method(static_cast<bc::MethodId>(m)).code()) {
        seen[static_cast<std::size_t>(insn.op)] = true;
      }
    }
  };
  for (const auto& [name, prog] : fuzz::builtin_edge_cases()) scan(prog);
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    fuzz::GeneratorSpec spec;
    spec.seed = seed;
    scan(fuzz::generate_adversarial(spec));
  }
  for (int op = 0; op < bc::kNumOps; ++op) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(op)])
        << "opcode " << bc::op_info(static_cast<bc::Op>(op)).name
        << " never appears in the seed corpus";
  }
}

TEST(OpcodeMatrix, NegationEdgeCases) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{5}, std::int64_t{-5}, kMax32, kMin32}) {
    bc::ProgramBuilder pb("m");
    pb.method("main", 0, 1).const_(v).store(0).load(0).neg().halt();
    pb.entry("main");
    EXPECT_EQ(ith::test::run_exit_value(pb.build()),
              static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(v)))
        << "neg(" << v << ")";
  }
}

}  // namespace
}  // namespace ith::rt
