// On-stack replacement tests: frame transfer at loop headers, its safety
// guards, and the end-to-end effect through the VM.
#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "heuristics/heuristic.hpp"
#include "opt/optimizer.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "support/error.hpp"
#include "testing.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

namespace ith::rt {
namespace {

/// A code source that serves the baseline body until `flip_after` back
/// edges, then offers an optimized body via the OSR hook.
class FlippingSource final : public CodeSource {
 public:
  FlippingSource(const bc::Program& prog, std::uint64_t flip_after)
      : prog_(prog), flip_after_(flip_after) {
    // Baseline versions with identity origins.
    for (std::size_t i = 0; i < prog.num_methods(); ++i) {
      auto cm = std::make_unique<CompiledMethod>();
      cm->body = prog.method(static_cast<bc::MethodId>(i));
      cm->tier = Tier::kBaseline;
      cm->method_id = static_cast<bc::MethodId>(i);
      cm->code_base = 0x1000 + 0x10000 * i;
      cm->origin.resize(cm->body.size());
      for (std::size_t pc = 0; pc < cm->body.size(); ++pc) {
        cm->origin[pc] = {static_cast<bc::MethodId>(i), static_cast<std::int32_t>(pc)};
      }
      cm->finalize();
      baseline_.push_back(std::move(cm));
    }
    // Fully optimized versions (always-inline) with provenance.
    heur::AlwaysInlineHeuristic h;
    const opt::Optimizer optimizer(prog, h);
    for (std::size_t i = 0; i < prog.num_methods(); ++i) {
      opt::OptimizeResult r = optimizer.optimize(static_cast<bc::MethodId>(i));
      auto cm = std::make_unique<CompiledMethod>();
      cm->body = std::move(r.body.method);
      cm->tier = Tier::kOpt;
      cm->method_id = static_cast<bc::MethodId>(i);
      cm->code_base = 0x900000 + 0x10000 * i;
      for (const opt::InstrMeta& m : r.body.meta) {
        cm->origin.emplace_back(m.origin_method, m.origin_pc);
      }
      cm->finalize();
      optimized_.push_back(std::move(cm));
    }
  }

  const CompiledMethod& invoke(bc::MethodId id) override {
    return *baseline_[static_cast<std::size_t>(id)];
  }
  void on_back_edge(bc::MethodId) override { ++back_edges_; }
  const CompiledMethod* osr_replacement(const CompiledMethod& current, std::size_t) override {
    if (back_edges_ < flip_after_) return nullptr;
    return optimized_[static_cast<std::size_t>(current.method_id)].get();
  }

  std::uint64_t back_edges_ = 0;

 private:
  const bc::Program& prog_;
  std::uint64_t flip_after_;
  std::vector<std::unique_ptr<CompiledMethod>> baseline_;
  std::vector<std::unique_ptr<CompiledMethod>> optimized_;
};

TEST(Osr, TransfersAtLoopHeaderAndPreservesSemantics) {
  const bc::Program p = ith::test::make_loop_program(200);
  const MachineModel machine = pentium4_model();
  FlippingSource source(p, /*flip_after=*/20);
  Interpreter interp(p, machine, source, nullptr);
  const ExecStats r = interp.run();
  EXPECT_EQ(r.osr_transitions, 1u);
  EXPECT_EQ(r.exit_value, ith::test::run_exit_value(p));
}

TEST(Osr, SpeedsUpTheRemainingIterations) {
  const bc::Program p = ith::test::make_loop_program(500);
  const MachineModel machine = pentium4_model();
  FlippingSource early(p, 10);
  Interpreter fast(p, machine, early, nullptr);
  const std::uint64_t with_osr = fast.run().cycles;

  FlippingSource never(p, 1'000'000);
  Interpreter slow(p, machine, never, nullptr);
  const std::uint64_t without = slow.run().cycles;
  EXPECT_LT(with_osr, without)
      << "transferring into optimized code mid-loop must cut the remaining cost";
}

TEST(Osr, DeclinedByDefaultHook) {
  const bc::Program p = ith::test::make_loop_program(100);
  const MachineModel machine = pentium4_model();
  ith::test::IdentitySource source(p, Tier::kBaseline);
  Interpreter interp(p, machine, source, nullptr);
  EXPECT_EQ(interp.run().osr_transitions, 0u);
}

TEST(Osr, VmDisabledByDefault) {
  const bc::Program p = ith::test::make_loop_program(3000);
  heur::JikesHeuristic h;
  vm::VmConfig cfg;
  cfg.scenario = vm::Scenario::kAdapt;
  cfg.hot_method_threshold = 50;
  vm::VirtualMachine m(p, pentium4_model(), h, cfg);
  const vm::RunResult r = m.run(2);
  EXPECT_GT(r.recompilations, 0u);
  EXPECT_EQ(r.iterations[0].exec.osr_transitions, 0u);
}

TEST(Osr, VmTransfersWhenEnabledAndImprovesIterationOne) {
  const bc::Program p = ith::test::make_loop_program(3000);
  auto run_with = [&p](bool osr) {
    heur::JikesHeuristic h;
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kAdapt;
    cfg.hot_method_threshold = 50;
    cfg.enable_osr = osr;
    vm::VirtualMachine m(p, pentium4_model(), h, cfg);
    return m.run(2);
  };
  const vm::RunResult off = run_with(false);
  const vm::RunResult on = run_with(true);
  EXPECT_GT(on.iterations[0].exec.osr_transitions, 0u);
  EXPECT_LT(on.iterations[0].exec.cycles, off.iterations[0].exec.cycles)
      << "iteration 1 should stop paying baseline speed after the transfer";
  EXPECT_EQ(on.iterations[0].exec.exit_value, off.iterations[0].exec.exit_value);
}

TEST(Osr, WorkloadSemanticsUnchangedWithOsr) {
  for (const char* name : {"compress", "jess", "raytrace"}) {
    const wl::Workload w = wl::make_workload(name);
    auto exit_with = [&w](bool osr) {
      heur::JikesHeuristic h;
      vm::VmConfig cfg;
      cfg.scenario = vm::Scenario::kAdapt;
      cfg.enable_osr = osr;
      vm::VirtualMachine m(w.program, pentium4_model(), h, cfg);
      return m.run(2).iterations[0].exec.exit_value;
    };
    EXPECT_EQ(exit_with(true), exit_with(false)) << name;
  }
}

}  // namespace
}  // namespace ith::rt
