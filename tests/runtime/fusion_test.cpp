// Superinstruction fusion (DESIGN.md §14): the pattern-table rewrite in
// predecode, the tier/policy gating, and the contract that matters — fused
// execution is bit-identical (ExecStats and globals) to unfused and to the
// reference engine, including on programs built to land control transfers
// in the middle of fused windows.
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "heuristics/heuristic.hpp"
#include "runtime/icache.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "runtime/predecode.hpp"
#include "support/error.hpp"
#include "testing.hpp"
#include "vm/vm.hpp"

namespace ith {
namespace {

rt::PredecodedBody predecode_method(const bc::Program& prog, const std::string& method,
                                    rt::FusionPolicy policy, rt::FusionStats* stats = nullptr,
                                    rt::Tier tier = rt::Tier::kOpt) {
  static test::IdentitySource* leak = nullptr;  // bodies must outlive the predecode
  leak = new test::IdentitySource(prog, tier);
  const rt::CompiledMethod& cm = leak->invoke(prog.find_method(method));
  return rt::predecode(cm, rt::pentium4_model(), policy, stats);
}

// --- satellite: the 40-byte layout promise, checked at runtime too so a
// --- failure names the actual size instead of failing to compile.
TEST(Fusion, PredecodedInsnLayoutBudget) {
  EXPECT_EQ(sizeof(rt::PredecodedInsn), 40u);
  EXPECT_EQ(offsetof(rt::PredecodedInsn, target), 0u);
  EXPECT_EQ(offsetof(rt::PredecodedInsn, base_cost), 8u);
  EXPECT_EQ(offsetof(rt::PredecodedInsn, line), 16u);
  // The side-pool handle rides in the former tail padding: adding it must
  // not have grown the entry or moved a hot field.
  EXPECT_EQ(offsetof(rt::PredecodedInsn, imm), 36u);
}

TEST(Fusion, PatternTableIsWellFormed) {
  const auto& rules = rt::fusion_rules();
  ASSERT_FALSE(rules.empty());
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const rt::FusionRule& rule = rules[r];
    EXPECT_NE(rule.name, nullptr);
    EXPECT_GE(rule.len, 2) << rule.name;
    EXPECT_LE(rule.len, rt::kMaxFusionPatternLen) << rule.name;
    EXPECT_LT(rule.rewrite_at, rule.len) << rule.name;
    // The pool-less fallback must be a real fused xop — except for imm-only
    // rules, where kNop means "leave unfused on pool overflow" and a
    // distinct immediate form must exist.
    if (rule.fused == rt::XOp::kNop) {
      EXPECT_NE(rule.fused_imm, rule.fused) << rule.name << " has no form at all";
    } else {
      EXPECT_GE(static_cast<int>(rule.fused), bc::kNumOps) << rule.name << " maps to a mirror xop";
    }
    if (rule.fused_imm != rule.fused) {
      EXPECT_GE(static_cast<int>(rule.fused_imm), bc::kNumOps)
          << rule.name << " imm form maps to a mirror xop";
      EXPECT_EQ(rule.rewrite_at, 0) << rule.name << ": imm capture assumes the head leads";
    }
    // Capture descriptors must address components inside the window.
    EXPECT_LT(rule.capture_b, static_cast<std::int8_t>(rule.len)) << rule.name;
    EXPECT_LT(rule.capture_extra, static_cast<std::int8_t>(rule.len)) << rule.name;
    EXPECT_LT(rule.require_same_a, static_cast<std::int8_t>(rule.len)) << rule.name;
    // Longest-first ordering is what makes "first match wins" pick the
    // longest pattern.
    if (r > 0) {
      EXPECT_LE(rule.len, rules[r - 1].len) << rule.name;
    }
  }
}

TEST(Fusion, RewritesHeadKeepsInterior) {
  // square(x) = x * x is exactly the load+load+mul pattern, which now
  // rewrites to the immediate form: both slots in the head, accounting data
  // in the side-pool record, interiors untouched.
  const bc::Program prog = test::make_loop_program(10);
  rt::FusionStats stats;
  const rt::PredecodedBody pb =
      predecode_method(prog, "square", rt::FusionPolicy::kAll, &stats);
  ASSERT_GE(pb.code.size(), 4u);
  EXPECT_TRUE(pb.fused);
  EXPECT_EQ(pb.code[0].xop, rt::XOp::kFLoadLoadMulImm);
  EXPECT_EQ(pb.code[0].fuse_len, 3);
  EXPECT_EQ(pb.code[0].b, pb.code[1].a) << "second slot not captured into the head";
  ASSERT_LT(pb.code[0].imm, pb.pool.size());
  const rt::FusedWindow& w = pb.pool[pb.code[0].imm];
  EXPECT_EQ(w.cost[0], pb.code[1].base_cost);
  EXPECT_EQ(w.cost[1], pb.code[2].base_cost);
  EXPECT_EQ(w.line[0], pb.code[1].line);
  EXPECT_EQ(w.line[1], pb.code[2].line);
  // Interior entries keep their mirror identity (and original operands), so
  // any control transfer landing on them executes unfused.
  EXPECT_EQ(pb.code[1].xop, rt::XOp::kLoad);
  EXPECT_EQ(pb.code[1].fuse_len, 1);
  EXPECT_EQ(pb.code[2].xop, rt::XOp::kMul);
  EXPECT_EQ(pb.code[0].op, bc::Op::kLoad);  // pre-fusion identity preserved
  EXPECT_EQ(stats.rules_fired, 1u);
  EXPECT_EQ(stats.insns_fused, 2u);
  EXPECT_EQ(stats.windows_imm, 1u);
  EXPECT_EQ(stats.pool_overflows, 0u);
}

TEST(Fusion, LoopGuardUsesLongestPattern) {
  // The loop head is load(i) const(n) cmplt jz — the 4-long guard rule must
  // win over the embedded cmplt+jz pair.
  const bc::Program prog = test::make_loop_program(10);
  rt::FusionStats stats;
  const rt::PredecodedBody pb = predecode_method(prog, "main", rt::FusionPolicy::kAll, &stats);
  bool saw_guard = false;
  for (const rt::PredecodedInsn& pi : pb.code) {
    EXPECT_NE(pi.xop, rt::XOp::kFCmpLtJz) << "pair rule fired inside the guard window";
    EXPECT_NE(pi.xop, rt::XOp::kFCmpLtJzImm) << "pair rule fired inside the guard window";
    if (pi.xop == rt::XOp::kFLoadConstCmpLtJzImm) {
      saw_guard = true;
      EXPECT_EQ(pi.fuse_len, 4);
      // Guard capture layout: slot in a (untouched), bound in b, branch
      // delta in the pool record's extra.
      EXPECT_EQ(pi.b, pb.code[static_cast<std::size_t>(&pi - pb.code.data()) + 1].a);
      ASSERT_LT(pi.imm, pb.pool.size());
      EXPECT_EQ(pb.pool[pi.imm].extra,
                pb.code[static_cast<std::size_t>(&pi - pb.code.data()) + 3].a);
    }
  }
  EXPECT_TRUE(saw_guard);
  const auto& rules = rt::fusion_rules();
  std::uint64_t hits = 0;
  std::uint64_t imm_hits = 0;
  ASSERT_EQ(stats.rule_hits_imm.size(), rules.size());
  for (std::size_t r = 0; r < rules.size(); ++r) {
    hits += stats.rule_hits[r];
    imm_hits += stats.rule_hits_imm[r];
    EXPECT_LE(stats.rule_hits_imm[r], stats.rule_hits[r]) << rules[r].name;
    if (std::string(rules[r].name) == "load_const_cmplt_jz") {
      EXPECT_GE(stats.rule_hits[r], 1u);
    }
  }
  EXPECT_EQ(hits, stats.rules_fired) << "per-rule hits must sum to rules_fired";
  EXPECT_EQ(imm_hits, stats.windows_imm) << "per-rule imm hits must sum to windows_imm";
}

TEST(Fusion, CallRetMarksCallerReturn) {
  // f2 calls f3 and immediately returns: the kRet (not the kCall) carries
  // the chained mark, with fuse_len 1 (nothing after it is retired).
  bc::ProgramBuilder pb("chain", 0);
  pb.method("f3", 1, 1).load(0).ret();
  pb.method("f2", 1, 1).load(0).call("f3", 1).ret();
  pb.method("main", 0, 0).const_(9).call("f2", 1).halt();
  pb.entry("main");
  const bc::Program prog = pb.build();
  const rt::PredecodedBody f2 = predecode_method(prog, "f2", rt::FusionPolicy::kAll);
  ASSERT_EQ(f2.code.size(), 3u);
  EXPECT_EQ(f2.code[1].xop, rt::XOp::kCall);
  EXPECT_EQ(f2.code[2].xop, rt::XOp::kFRetChained);
  EXPECT_EQ(f2.code[2].fuse_len, 1);
  EXPECT_EQ(test::run_exit_value(prog), 9);
}

TEST(Fusion, PolicyGatesByTier) {
  const bc::Program prog = test::make_loop_program(10);
  // kOff never fuses; kPromotedOnly skips baseline bodies but fuses
  // promoted ones; kAll fuses everything.
  EXPECT_FALSE(
      predecode_method(prog, "square", rt::FusionPolicy::kOff, nullptr, rt::Tier::kOpt).fused);
  EXPECT_FALSE(predecode_method(prog, "square", rt::FusionPolicy::kPromotedOnly, nullptr,
                                rt::Tier::kBaseline)
                   .fused);
  EXPECT_TRUE(predecode_method(prog, "square", rt::FusionPolicy::kPromotedOnly, nullptr,
                               rt::Tier::kMidOpt)
                  .fused);
  EXPECT_TRUE(
      predecode_method(prog, "square", rt::FusionPolicy::kAll, nullptr, rt::Tier::kBaseline)
          .fused);
}

TEST(Fusion, EnvVarSelectsPolicy) {
  const char* saved = std::getenv("ITH_FUSION");
  const std::string saved_value = saved == nullptr ? "" : saved;
  const auto expect_policy = [](const char* value, rt::FusionPolicy want) {
    ::setenv("ITH_FUSION", value, 1);
    EXPECT_EQ(rt::default_fusion_policy(), want) << "ITH_FUSION=" << value;
  };
  expect_policy("0", rt::FusionPolicy::kOff);
  expect_policy("off", rt::FusionPolicy::kOff);
  expect_policy("1", rt::FusionPolicy::kPromotedOnly);
  expect_policy("promoted", rt::FusionPolicy::kPromotedOnly);
  expect_policy("all", rt::FusionPolicy::kAll);
  ::unsetenv("ITH_FUSION");
  EXPECT_EQ(rt::default_fusion_policy(), rt::FusionPolicy::kPromotedOnly);
  ::setenv("ITH_FUSION", "typo", 1);
  EXPECT_THROW(rt::default_fusion_policy(), Error);
  if (saved == nullptr) {
    ::unsetenv("ITH_FUSION");
  } else {
    ::setenv("ITH_FUSION", saved_value.c_str(), 1);
  }
  EXPECT_STREQ(rt::fusion_policy_name(rt::FusionPolicy::kOff), "off");
  EXPECT_STREQ(rt::fusion_policy_name(rt::FusionPolicy::kPromotedOnly), "promoted");
  EXPECT_STREQ(rt::fusion_policy_name(rt::FusionPolicy::kAll), "all");
}

// --- equivalence: fused, unfused and reference executions of the same
// --- program must agree on every ExecStats field and the globals.

rt::ExecStats run_with(const bc::Program& prog, rt::EngineKind engine, rt::FusionPolicy fusion,
                       bool with_icache, std::vector<std::int64_t>* globals_out = nullptr,
                       std::uint64_t max_instructions = 2'000'000'000ULL) {
  static const rt::MachineModel machine = rt::pentium4_model();
  test::IdentitySource source(prog);
  std::optional<rt::ICache> icache;
  if (with_icache) {
    icache.emplace(machine.icache_bytes, machine.icache_line_bytes, machine.icache_assoc);
  }
  rt::InterpreterOptions opts;
  opts.engine = engine;
  opts.fusion = fusion;
  opts.max_instructions = max_instructions;
  rt::Interpreter interp(prog, machine, source, icache ? &*icache : nullptr, opts);
  const rt::ExecStats stats = interp.run();
  if (globals_out != nullptr) *globals_out = interp.globals();
  return stats;
}

void expect_three_way_identical(const bc::Program& prog, const std::string& label) {
  for (const bool with_icache : {false, true}) {
    std::vector<std::int64_t> fused_g, unfused_g, ref_g;
    const rt::ExecStats fused =
        run_with(prog, rt::EngineKind::kFast, rt::FusionPolicy::kAll, with_icache, &fused_g);
    const rt::ExecStats unfused =
        run_with(prog, rt::EngineKind::kFast, rt::FusionPolicy::kOff, with_icache, &unfused_g);
    const rt::ExecStats ref = run_with(prog, rt::EngineKind::kReference, rt::FusionPolicy::kOff,
                                       with_icache, &ref_g);
    EXPECT_EQ(fused.cycles, ref.cycles) << label << " icache " << with_icache;
    EXPECT_EQ(fused.instructions, ref.instructions) << label << " icache " << with_icache;
    EXPECT_EQ(fused.icache_probes, ref.icache_probes) << label << " icache " << with_icache;
    EXPECT_EQ(fused.icache_misses, ref.icache_misses) << label << " icache " << with_icache;
    EXPECT_TRUE(fused == ref) << label << " fused vs reference, icache " << with_icache;
    EXPECT_TRUE(unfused == ref) << label << " unfused vs reference, icache " << with_icache;
    EXPECT_EQ(fused_g, ref_g) << label;
    EXPECT_EQ(unfused_g, ref_g) << label;
  }
}

// --- immediate-operand forms: capture layout, the same-slot constraint,
// --- and the pool-overflow fallback.

TEST(Fusion, IncLocalCapturesTheCountedLoopIncrement) {
  // The canonical counted-loop increment: load i; const 1; add; store i.
  bc::ProgramBuilder pbuild("inc", 0);
  auto& m = pbuild.method("main", 0, 1);
  m.const_(4).store(0);
  m.load(0).const_(3).add().store(0);
  m.load(0).halt();
  pbuild.entry("main");
  const bc::Program prog = pbuild.build();
  rt::FusionStats stats;
  const rt::PredecodedBody pb = predecode_method(prog, "main", rt::FusionPolicy::kAll, &stats);
  const rt::PredecodedInsn& head = pb.code[2];
  EXPECT_EQ(head.xop, rt::XOp::kFIncLocal);
  EXPECT_EQ(head.fuse_len, 4);
  EXPECT_EQ(head.a, 0) << "slot";
  EXPECT_EQ(head.b, 3) << "captured immediate";
  ASSERT_LT(head.imm, pb.pool.size());
  const rt::FusedWindow& w = pb.pool[head.imm];
  for (std::size_t k = 1; k <= 3; ++k) {
    EXPECT_EQ(w.cost[k - 1], pb.code[2 + k].base_cost);
    EXPECT_EQ(w.line[k - 1], pb.code[2 + k].line);
  }
  // Interiors keep their mirrors for mid-window control transfers.
  EXPECT_EQ(pb.code[3].xop, rt::XOp::kConst);
  EXPECT_EQ(pb.code[4].xop, rt::XOp::kAdd);
  EXPECT_EQ(pb.code[5].xop, rt::XOp::kStore);
  EXPECT_EQ(test::run_exit_value(prog), 7);
}

TEST(Fusion, IncLocalRequiresTheSameSlot) {
  // load 0 ... store 1 is NOT an increment, but it IS a whole assignment
  // statement: the same-slot miss must fall through to the general
  // loc_add_k rule, which captures all three operands (source slot in the
  // head's a, immediate in b, destination slot in the window's extra).
  bc::ProgramBuilder pbuild("notinc", 0);
  auto& m = pbuild.method("main", 0, 2);
  m.const_(4).store(0);
  m.load(0).const_(3).add().store(1);
  m.load(1).halt();
  pbuild.entry("main");
  const bc::Program prog = pbuild.build();
  const rt::PredecodedBody pb = predecode_method(prog, "main", rt::FusionPolicy::kAll);
  const rt::PredecodedInsn& head = pb.code[2];
  EXPECT_EQ(head.xop, rt::XOp::kFLocAddK) << "same-slot miss must fall to loc_add_k";
  EXPECT_EQ(head.a, 0) << "source slot";
  EXPECT_EQ(head.b, 3) << "captured immediate";
  ASSERT_LT(head.imm, pb.pool.size());
  EXPECT_EQ(pb.pool[head.imm].extra, 1) << "captured destination slot";
  EXPECT_EQ(test::run_exit_value(prog), 7);
}

TEST(Fusion, PoolOverflowFallsBackToPlainForms) {
  // Exhaust the 16-bit handle space, then demand one more window of each
  // kind: a rule with a plain form degrades to it, an imm-only rule leaves
  // the window unfused (and its embedded pair gets picked up instead).
  bc::ProgramBuilder pbuild("overflow", 0);
  auto& m = pbuild.method("main", 0, 1);
  m.const_(0);
  for (std::size_t i = 0; i < rt::kMaxFusedWindowsPerBody; ++i) m.const_(1).add();
  m.store(0);
  m.load(0).const_(1).add().store(0);  // inc_local window past the pool
  m.load(0).const_(1).add();           // const+add window past the pool
  m.halt();
  pbuild.entry("main");
  const bc::Program prog = pbuild.build();
  rt::FusionStats stats;
  const rt::PredecodedBody pb = predecode_method(prog, "main", rt::FusionPolicy::kAll, &stats);
  EXPECT_EQ(pb.pool.size(), rt::kMaxFusedWindowsPerBody);
  EXPECT_EQ(stats.windows_imm, rt::kMaxFusedWindowsPerBody);
  EXPECT_GE(stats.pool_overflows, 2u);
  const std::size_t inc_head = 1 + 2 * rt::kMaxFusedWindowsPerBody + 1;
  EXPECT_EQ(pb.code[inc_head].xop, rt::XOp::kLoad) << "imm-only rule must stay unfused";
  EXPECT_EQ(pb.code[inc_head + 1].xop, rt::XOp::kFConstAdd) << "pool-less fallback missing";
  EXPECT_EQ(pb.code[inc_head + 4].xop, rt::XOp::kLoad);
  EXPECT_EQ(pb.code[inc_head + 5].xop, rt::XOp::kFConstAdd);
  // Bit-identity holds even straddling the overflow boundary.
  expect_three_way_identical(prog, "pool_overflow");
}

/// A back edge whose target is the INTERIOR of a fused 4-long guard window:
/// the loop re-enters at the kCmpLt, so the fused head executes only on the
/// fall-through entry and the interior entries must still run unfused.
bc::Program make_backedge_into_window_program() {
  bc::ProgramBuilder pb("backedge_interior", 0);
  auto& m = pb.method("main", 0, 1);
  m.const_(5).store(0);
  m.label("guard");
  m.load(0).const_(1);
  m.label("mid");  // lands on the kCmpLt: interior entry of the fused guard
  m.cmplt().jnz("done");
  m.load(0).const_(1).sub().store(0);  // i--
  m.load(0).load(0).load(0);           // (i, i, i): two survive the branch pop
  m.jnz("mid");                        // i != 0: back edge into the window
  m.pop().pop();                       // i == 0: drop the pair, exit via guard
  m.jmp("guard");
  m.label("done");
  m.load(0).halt();
  pb.entry("main");
  return pb.build();
}

/// A forward jump over a fused head into its interior: the kAdd of a
/// {kConst, kAdd} window is the join point of a diamond, and the two-trip
/// loop takes each arm once — so the window executes fused on trip one and
/// is entered mid-window (raw interior kAdd) on trip two.
bc::Program make_jump_into_window_program() {
  bc::ProgramBuilder pb("jump_interior", 0);
  auto& m = pb.method("main", 0, 1);
  m.const_(0).store(0);  // trip counter doubles as path selector
  m.label("iter");
  m.const_(100);  // base operand, both arms
  m.load(0).jnz("taken");
  m.const_(41);  // head of the fused {kConst, kAdd} window
  m.label("mid");
  m.add();  // interior: entered fused from fall-through, raw from the jump
  m.jmp("join");
  m.label("taken");
  m.const_(7).jmp("mid");
  m.label("join");
  m.pop();
  m.load(0).const_(1).add().store(0);
  m.load(0).const_(2).cmplt().jnz("iter");
  m.load(0).halt();
  pb.entry("main");
  return pb.build();
}

/// A back edge into the interior of an operand-captured kFDecLocal window:
/// the branch lands on the kConst component, so the decrement runs fused on
/// fall-through and unfused (with live operand-stack input) when entered
/// mid-window — the captured operands must never shadow the interiors.
bc::Program make_backedge_into_inc_window_program() {
  bc::ProgramBuilder pb("backedge_inc_interior", 0);
  auto& m = pb.method("main", 0, 1);
  m.const_(5).store(0);
  m.load(0);       // window head: {kLoad, kConst, kSub, kStore} on slot 0
  m.label("mid");  // lands on the kConst: interior of the captured window
  m.const_(1).sub().store(0);
  m.load(0).load(0).jnz("mid");  // i != 0: back edge into the window
  m.pop();
  m.load(0).halt();
  pb.entry("main");
  return pb.build();
}

/// Deep call+return chain: every frame returns straight into another return,
/// so one dynamic kRet chains through the whole stack.
bc::Program make_ret_chain_program() {
  bc::ProgramBuilder pb("ret_chain", 0);
  pb.method("f0", 1, 1).load(0).const_(1).add().ret();
  for (int depth = 1; depth <= 6; ++depth) {
    pb.method("f" + std::to_string(depth), 1, 1)
        .load(0)
        .call("f" + std::to_string(depth - 1), 1)
        .ret();
  }
  auto& m = pb.method("main", 0, 1);
  m.const_(0).store(0);
  m.label("head");
  m.load(0).const_(20).cmplt().jz("done");
  m.load(0).call("f6", 1).pop();
  m.load(0).const_(1).add().store(0);
  m.jmp("head");
  m.label("done");
  m.load(0).halt();
  pb.entry("main");
  return pb.build();
}

TEST(Fusion, AdversarialControlFlowIsBitIdentical) {
  expect_three_way_identical(make_backedge_into_window_program(), "backedge_interior");
  expect_three_way_identical(make_backedge_into_inc_window_program(), "backedge_inc_interior");
  expect_three_way_identical(make_jump_into_window_program(), "jump_interior");
  expect_three_way_identical(make_ret_chain_program(), "ret_chain");
  expect_three_way_identical(test::make_loop_program(200), "guard_loop");
  expect_three_way_identical(test::make_fib_program(12), "fib");
  expect_three_way_identical(test::make_globals_program(), "globals");
}

// The instruction budget must trip at the same instruction with the same
// message whether that instruction is a fused head, a fused interior
// component, or unfused — swept across budgets so the trip point lands on
// every offset within the fused windows.
TEST(Fusion, BudgetTrapParityAcrossFusedWindows) {
  for (const bc::Program& prog :
       {make_backedge_into_window_program(), make_backedge_into_inc_window_program()}) {
    for (std::uint64_t budget = 1; budget <= 60; ++budget) {
    std::string outcome[3];
    int i = 0;
    const struct {
      rt::EngineKind engine;
      rt::FusionPolicy fusion;
    } variants[] = {{rt::EngineKind::kFast, rt::FusionPolicy::kAll},
                    {rt::EngineKind::kFast, rt::FusionPolicy::kOff},
                    {rt::EngineKind::kReference, rt::FusionPolicy::kOff}};
    for (const auto& v : variants) {
      try {
        const rt::ExecStats stats = run_with(prog, v.engine, v.fusion, false, nullptr, budget);
        outcome[i++] = "ok:" + std::to_string(stats.instructions);
      } catch (const Error& e) {
        outcome[i++] = std::string("trap:") + e.what();
      }
    }
    EXPECT_EQ(outcome[0], outcome[1]) << "budget " << budget;
    EXPECT_EQ(outcome[1], outcome[2]) << "budget " << budget;
    }
  }
}

// OSR entry into promoted code while fused windows are live: aggressive
// thresholds in the adaptive VM, fused vs reference must agree on every
// iteration stat including the transition count.
TEST(Fusion, OsrUnderFusionMatchesReference) {
  const bc::Program prog = test::make_loop_program(3000);
  std::uint64_t osr_seen = 0;
  std::vector<rt::ExecStats> per_engine[2];
  int idx = 0;
  for (const rt::EngineKind engine : {rt::EngineKind::kFast, rt::EngineKind::kReference}) {
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kAdapt;
    cfg.enable_osr = true;
    cfg.hot_method_threshold = 40;
    cfg.hot_site_threshold = 30;
    cfg.rehot_multiplier = 4;
    cfg.interp_options.engine = engine;
    cfg.interp_options.fusion = rt::FusionPolicy::kAll;
    heur::InlineParams params = heur::default_params();
    heur::JikesHeuristic h(params);
    vm::VirtualMachine machine(prog, rt::pentium4_model(), h, cfg);
    const vm::RunResult rr = machine.run(2);
    for (const vm::IterationStats& it : rr.iterations) {
      per_engine[idx].push_back(it.exec);
      osr_seen += it.exec.osr_transitions;
    }
    ++idx;
  }
  ASSERT_EQ(per_engine[0].size(), per_engine[1].size());
  for (std::size_t i = 0; i < per_engine[0].size(); ++i) {
    EXPECT_TRUE(per_engine[0][i] == per_engine[1][i]) << "iteration " << i;
  }
  EXPECT_GT(osr_seen, 0u) << "OSR never fired; the test lost its point";
}

TEST(Fusion, EngineExposesStatsReferenceDoesNot) {
  const bc::Program prog = test::make_loop_program(50);
  test::IdentitySource source(prog);
  rt::InterpreterOptions opts;
  opts.engine = rt::EngineKind::kFast;
  opts.fusion = rt::FusionPolicy::kAll;
  rt::Interpreter fast(prog, rt::pentium4_model(), source, nullptr, opts);
  fast.run();
  const rt::FusionStats* stats = fast.fusion_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->bodies_fused, 0u);
  EXPECT_GT(stats->rules_fired, 0u);
  EXPECT_GE(stats->bodies_considered, stats->bodies_fused);
  EXPECT_EQ(stats->rule_hits.size(), rt::fusion_rules().size());

  test::IdentitySource source2(prog);
  rt::InterpreterOptions ref_opts;
  ref_opts.engine = rt::EngineKind::kReference;
  rt::Interpreter ref(prog, rt::pentium4_model(), source2, nullptr, ref_opts);
  ref.run();
  EXPECT_EQ(ref.fusion_stats(), nullptr);
}

}  // namespace
}  // namespace ith
