#include "runtime/icache.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ith::rt {
namespace {

TEST(ICache, FirstTouchMissesThenHits) {
  ICache c(1024, 64, 2);
  EXPECT_FALSE(c.probe(0));
  EXPECT_TRUE(c.probe(0));
  EXPECT_TRUE(c.probe(63));   // same line
  EXPECT_FALSE(c.probe(64));  // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(ICache, GeometryValidation) {
  EXPECT_THROW(ICache(100, 64, 2), Error);   // not divisible into sets
  EXPECT_THROW(ICache(1024, 60, 2), Error);  // line not power of two
  EXPECT_THROW(ICache(64, 64, 2), Error);    // smaller than one set
  EXPECT_NO_THROW(ICache(1024, 64, 2));
}

TEST(ICache, SetCountComputed) {
  ICache c(8192, 64, 4);
  EXPECT_EQ(c.num_sets(), 32u);
  EXPECT_EQ(c.associativity(), 4u);
  EXPECT_EQ(c.line_bytes(), 64u);
}

TEST(ICache, LruEvictsOldestWay) {
  // Direct-map-like pressure on one set of a 2-way cache: addresses that
  // alias to set 0 are multiples of sets*line.
  ICache c(1024, 64, 2);  // 8 sets
  const std::uint64_t stride = 8 * 64;
  EXPECT_FALSE(c.probe(0 * stride));
  EXPECT_FALSE(c.probe(1 * stride));
  EXPECT_TRUE(c.probe(0 * stride));   // refresh way 0
  EXPECT_FALSE(c.probe(2 * stride));  // evicts line 1 (older)
  EXPECT_TRUE(c.probe(0 * stride));   // still resident
  EXPECT_FALSE(c.probe(1 * stride));  // was evicted
}

TEST(ICache, CapacityMissBehaviour) {
  ICache c(1024, 64, 2);  // 16 lines capacity
  for (std::uint64_t line = 0; line < 32; ++line) {
    c.probe(line * 64);
  }
  EXPECT_EQ(c.misses(), 32u);  // working set double the capacity: all miss
  c.reset_counters();
  for (std::uint64_t line = 0; line < 8; ++line) {
    c.probe(line * 64);
    c.probe(line * 64);
  }
  EXPECT_EQ(c.hits(), 8u);  // small working set: second touches hit
}

TEST(ICache, FlushInvalidatesEverything) {
  ICache c(1024, 64, 2);
  c.probe(0);
  EXPECT_TRUE(c.probe(0));
  c.flush();
  EXPECT_FALSE(c.probe(0));
}

TEST(ICache, ResetCountersKeepsContents) {
  ICache c(1024, 64, 2);
  c.probe(0);
  c.reset_counters();
  EXPECT_EQ(c.probes(), 0u);
  EXPECT_TRUE(c.probe(0)) << "contents survive counter reset";
}

TEST(ICache, DistinctTagsSameSetCoexistUpToAssoc) {
  ICache c(2048, 64, 4);  // 8 sets, 4 ways
  const std::uint64_t stride = 8 * 64;
  for (std::uint64_t i = 0; i < 4; ++i) c.probe(i * stride);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.probe(i * stride)) << "way " << i;
  }
}

}  // namespace
}  // namespace ith::rt
