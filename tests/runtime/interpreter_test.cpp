// Execution-engine tests: semantics of every opcode, cost accounting,
// profiling hooks, and the runaway guards.
#include "runtime/interpreter.hpp"

#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "bytecode/size_estimator.hpp"
#include "runtime/machine.hpp"
#include "runtime/profile.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace ith::rt {
namespace {

std::int64_t run_value(const bc::Program& p) { return ith::test::run_exit_value(p); }

bc::Program expr_program(const std::function<void(bc::MethodBuilder&)>& body) {
  bc::ProgramBuilder pb("expr", 16);
  auto& m = pb.method("main", 0, 4);
  body(m);
  m.halt();
  pb.entry("main");
  return pb.build();
}

TEST(Interpreter, Arithmetic) {
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(6).const_(7).mul(); })), 42);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(10).const_(3).sub(); })), 7);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(10).const_(3).div(); })), 3);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(10).const_(3).mod(); })), 1);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(5).neg(); })), -5);
}

TEST(Interpreter, DivisionTotalSemantics) {
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(10).const_(0).div(); })), 0);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(10).const_(0).mod(); })), 0);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(-7).const_(2).div(); })), -3);
}

TEST(Interpreter, Comparisons) {
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(2).const_(3).cmplt(); })), 1);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(3).const_(3).cmplt(); })), 0);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(3).const_(3).cmple(); })), 1);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(3).const_(3).cmpeq(); })), 1);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(3).const_(4).cmpne(); })), 1);
}

TEST(Interpreter, OperandOrderIsProgramOrder) {
  // lhs pushed first: 10 - 3, not 3 - 10.
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(10).const_(3).sub(); })), 7);
  EXPECT_EQ(run_value(expr_program([](auto& m) { m.const_(10).const_(3).cmplt(); })), 0);
}

TEST(Interpreter, MulWrapsInsteadOfUb) {
  const std::int64_t big = 2'000'000'000;
  bc::ProgramBuilder pb("wrap", 0);
  auto& m = pb.method("main", 0, 1);
  m.const_(big).store(0);
  m.load(0).load(0).mul().load(0).mul().load(0).mul();  // big^4 wraps
  m.halt();
  pb.entry("main");
  EXPECT_NO_THROW(run_value(pb.build()));
}

TEST(Interpreter, LocalsAndGlobals) {
  EXPECT_EQ(run_value(ith::test::make_globals_program()), 42);
  EXPECT_EQ(run_value(expr_program([](auto& m) {
              m.const_(9).store(2).load(2).load(2).add();
            })),
            18);
}

TEST(Interpreter, GlobalIndexWrapsModuloSize) {
  // Index 19 in a 16-element array lands on slot 3; negative wraps too.
  EXPECT_EQ(run_value(expr_program([](auto& m) {
              m.const_(3).const_(5).gstore();
              m.const_(19).gload();
            })),
            5);
  EXPECT_EQ(run_value(expr_program([](auto& m) {
              m.const_(13).const_(8).gstore();
              m.const_(-3).gload();  // -3 mod 16 == 13
            })),
            8);
}

TEST(Interpreter, CallsAndRecursion) {
  EXPECT_EQ(run_value(ith::test::make_add_program()), 5);
  EXPECT_EQ(run_value(ith::test::make_fib_program(10)), 55);
  EXPECT_EQ(run_value(ith::test::make_loop_program(10)), 285);  // sum of squares < 10
}

TEST(Interpreter, EntryMayReturnInsteadOfHalt) {
  bc::ProgramBuilder pb("ret", 0);
  pb.method("main", 0, 0).const_(7).ret();
  pb.entry("main");
  EXPECT_EQ(run_value(pb.build()), 7);
}

TEST(Interpreter, CyclesScaleWithTierCpi) {
  const bc::Program p = ith::test::make_loop_program(100);
  const MachineModel machine = pentium4_model();

  ith::test::IdentitySource opt_source(p, Tier::kOpt);
  Interpreter opt_interp(p, machine, opt_source, nullptr);
  const ExecStats opt = opt_interp.run();

  ith::test::IdentitySource base_source(p, Tier::kBaseline);
  Interpreter base_interp(p, machine, base_source, nullptr);
  const ExecStats base = base_interp.run();

  EXPECT_EQ(opt.instructions, base.instructions) << "same code, same dynamic count";
  EXPECT_GT(base.cycles, opt.cycles) << "baseline tier must be slower";
}

TEST(Interpreter, CallOverheadCharged) {
  const MachineModel machine = pentium4_model();
  const bc::Program with_call = ith::test::make_add_program();
  ith::test::IdentitySource s1(with_call);
  Interpreter i1(with_call, machine, s1, nullptr);
  const ExecStats r1 = i1.run();
  EXPECT_EQ(r1.calls, 1u);
  // Cycles must include the call overhead beyond per-word costs.
  double words = 0;
  const ExecStats probe = r1;
  (void)probe;
  EXPECT_GE(r1.cycles, machine.call_overhead_cycles);
  (void)words;
}

TEST(Interpreter, ICacheMissesAddCycles) {
  const bc::Program p = ith::test::make_loop_program(200);
  const MachineModel machine = pentium4_model();

  ith::test::IdentitySource s1(p);
  Interpreter no_cache(p, machine, s1, nullptr);
  const ExecStats without = no_cache.run();

  ICache icache(machine.icache_bytes, machine.icache_line_bytes, machine.icache_assoc);
  ith::test::IdentitySource s2(p);
  Interpreter with_cache(p, machine, s2, &icache);
  const ExecStats with = with_cache.run();

  EXPECT_GT(with.icache_probes, 0u);
  EXPECT_GT(with.icache_misses, 0u);
  EXPECT_EQ(with.cycles, without.cycles + with.icache_misses * machine.icache_miss_cycles);
}

TEST(Interpreter, MaxFrameDepthTracksRecursion) {
  const bc::Program p = ith::test::make_fib_program(6);
  const MachineModel machine = pentium4_model();
  ith::test::IdentitySource s(p);
  Interpreter interp(p, machine, s, nullptr);
  const ExecStats r = interp.run();
  EXPECT_GE(r.max_frame_depth, 6u);
}

TEST(Interpreter, StackOverflowGuard) {
  // Unbounded recursion: f(n) = f(n+1).
  bc::ProgramBuilder pb("inf", 0);
  pb.method("f", 1, 1).load(0).const_(1).add().call("f", 1).ret();
  pb.method("main", 0, 0).const_(0).call("f", 1).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  const MachineModel machine = pentium4_model();
  ith::test::IdentitySource s(p);
  InterpreterOptions opts;
  opts.max_frames = 64;
  Interpreter interp(p, machine, s, nullptr, opts);
  EXPECT_THROW(interp.run(), Error);
}

TEST(Interpreter, InstructionBudgetGuard) {
  // Infinite loop trips the instruction budget.
  bc::ProgramBuilder pb("spin", 0);
  auto& m = pb.method("main", 0, 0);
  m.label("top").jmp("top");
  pb.entry("main");
  const bc::Program p = pb.build();
  const MachineModel machine = pentium4_model();
  ith::test::IdentitySource s(p);
  InterpreterOptions opts;
  opts.max_instructions = 10'000;
  Interpreter interp(p, machine, s, nullptr, opts);
  EXPECT_THROW(interp.run(), Error);
}

TEST(Interpreter, GlobalsPersistAcrossRunsUntilReset) {
  bc::ProgramBuilder pb("accum", 4);
  auto& m = pb.method("main", 0, 0);
  m.const_(0).const_(0).gload().const_(1).add().gstore();
  m.const_(0).gload().halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  const MachineModel machine = pentium4_model();
  ith::test::IdentitySource s(p);
  Interpreter interp(p, machine, s, nullptr);
  EXPECT_EQ(interp.run().exit_value, 1);
  EXPECT_EQ(interp.run().exit_value, 2) << "globals persist";
  interp.reset_globals();
  EXPECT_EQ(interp.run().exit_value, 1) << "reset clears them";
}

// Profiling hooks.
class RecordingSource final : public CodeSource {
 public:
  explicit RecordingSource(const bc::Program& prog) : inner_(prog), profile_(prog.num_methods()) {}
  const CompiledMethod& invoke(bc::MethodId id) override {
    profile_.record_invocation(id);
    return inner_.invoke(id);
  }
  void on_back_edge(bc::MethodId id) override { profile_.record_back_edge(id); }
  void on_call_site(bc::MethodId m, std::int32_t pc) override { profile_.record_call_site(m, pc); }
  ProfileData profile_;

 private:
  ith::test::IdentitySource inner_;
};

TEST(Interpreter, ProfileHooksFire) {
  const bc::Program p = ith::test::make_loop_program(10);
  const MachineModel machine = pentium4_model();
  RecordingSource s(p);
  Interpreter interp(p, machine, s, nullptr);
  interp.run();
  const bc::MethodId square = p.find_method("square");
  EXPECT_EQ(s.profile_.invocations(square), 10u);
  EXPECT_EQ(s.profile_.invocations(p.entry()), 1u);
  EXPECT_EQ(s.profile_.back_edges(p.entry()), 10u);
  const std::size_t call_pc = p.method(p.entry()).call_sites().front();
  EXPECT_EQ(s.profile_.site_count(p.entry(), static_cast<std::int32_t>(call_pc)), 10u);
}

}  // namespace
}  // namespace ith::rt
