// The tentpole guarantee of the fast engine: bit-identical ExecStats (all
// fields) and globals against the reference interpreter, over the whole
// workload suite, under every scenario that exercises the cost model —
// icache simulation, adaptive recompilation, and OSR frame transfer.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/generator.hpp"
#include "heuristics/heuristic.hpp"
#include "runtime/icache.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "support/error.hpp"
#include "testing.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

struct VmObservation {
  std::vector<rt::ExecStats> per_iteration;
  std::uint64_t total_cycles = 0;
  std::uint64_t running_cycles = 0;
  std::uint64_t compile_cycles_all = 0;
  std::vector<std::int64_t> globals;
};

VmObservation observe_vm(const bc::Program& prog, vm::VmConfig cfg, rt::EngineKind engine,
                         int iterations = 2) {
  cfg.interp_options.engine = engine;
  heur::InlineParams params = heur::default_params();
  heur::JikesHeuristic h(params);
  vm::VirtualMachine machine(prog, rt::pentium4_model(), h, cfg);
  const vm::RunResult rr = machine.run(iterations);
  VmObservation obs;
  for (const vm::IterationStats& it : rr.iterations) obs.per_iteration.push_back(it.exec);
  obs.total_cycles = rr.total_cycles;
  obs.running_cycles = rr.running_cycles;
  obs.compile_cycles_all = rr.compile_cycles_all;
  obs.globals = machine.globals();
  return obs;
}

void expect_identical(const VmObservation& fast, const VmObservation& ref,
                      const std::string& label) {
  ASSERT_EQ(fast.per_iteration.size(), ref.per_iteration.size()) << label;
  for (std::size_t i = 0; i < fast.per_iteration.size(); ++i) {
    const rt::ExecStats& a = fast.per_iteration[i];
    const rt::ExecStats& b = ref.per_iteration[i];
    // Field-by-field first so a mismatch names the diverging field.
    EXPECT_EQ(a.cycles, b.cycles) << label << " iteration " << i;
    EXPECT_EQ(a.instructions, b.instructions) << label << " iteration " << i;
    EXPECT_EQ(a.calls, b.calls) << label << " iteration " << i;
    EXPECT_EQ(a.icache_probes, b.icache_probes) << label << " iteration " << i;
    EXPECT_EQ(a.icache_misses, b.icache_misses) << label << " iteration " << i;
    EXPECT_EQ(a.osr_transitions, b.osr_transitions) << label << " iteration " << i;
    EXPECT_EQ(a.max_frame_depth, b.max_frame_depth) << label << " iteration " << i;
    EXPECT_EQ(a.exit_value, b.exit_value) << label << " iteration " << i;
    EXPECT_TRUE(a == b) << label << " iteration " << i;  // defaulted ==: every field
  }
  EXPECT_EQ(fast.total_cycles, ref.total_cycles) << label;
  EXPECT_EQ(fast.running_cycles, ref.running_cycles) << label;
  EXPECT_EQ(fast.compile_cycles_all, ref.compile_cycles_all) << label;
  EXPECT_EQ(fast.globals, ref.globals) << label;
}

TEST(EngineEquivalence, WholeSuiteAdaptScenario) {
  for (const wl::Workload& w : wl::make_suite("all")) {
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kAdapt;
    expect_identical(observe_vm(w.program, cfg, rt::EngineKind::kFast),
                     observe_vm(w.program, cfg, rt::EngineKind::kReference),
                     "adapt/" + w.name);
  }
}

TEST(EngineEquivalence, WholeSuiteOptScenario) {
  for (const wl::Workload& w : wl::make_suite("all")) {
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kOpt;
    expect_identical(observe_vm(w.program, cfg, rt::EngineKind::kFast),
                     observe_vm(w.program, cfg, rt::EngineKind::kReference),
                     "opt/" + w.name);
  }
}

// The suite runs above use the ambient ITH_FUSION policy; this pins both
// extremes explicitly so the equivalence guarantee is policy-independent
// regardless of how CI sets the environment.
TEST(EngineEquivalence, SuiteIdenticalUnderEveryFusionPolicy) {
  for (const rt::FusionPolicy policy : {rt::FusionPolicy::kOff, rt::FusionPolicy::kAll}) {
    for (const wl::Workload& w : wl::make_suite("specjvm98")) {
      vm::VmConfig cfg;
      cfg.scenario = vm::Scenario::kAdapt;
      cfg.interp_options.fusion = policy;
      expect_identical(observe_vm(w.program, cfg, rt::EngineKind::kFast),
                       observe_vm(w.program, cfg, rt::EngineKind::kReference),
                       std::string("fusion=") + rt::fusion_policy_name(policy) + "/" + w.name);
    }
  }
}

// Aggressive thresholds + OSR so baseline frames are replaced mid-loop; the
// suite-wide transition count must be nonzero (the config exercises the
// transfer path, not just the guards) and identical between engines.
TEST(EngineEquivalence, OsrEnabledAdaptIsIdenticalAndTransitions) {
  std::uint64_t fast_osr = 0;
  std::uint64_t ref_osr = 0;
  for (const wl::Workload& w : wl::make_suite("specjvm98")) {
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kAdapt;
    cfg.enable_osr = true;
    cfg.hot_method_threshold = 40;
    cfg.hot_site_threshold = 30;
    cfg.rehot_multiplier = 4;
    const VmObservation fast = observe_vm(w.program, cfg, rt::EngineKind::kFast);
    const VmObservation ref = observe_vm(w.program, cfg, rt::EngineKind::kReference);
    expect_identical(fast, ref, "osr/" + w.name);
    for (const rt::ExecStats& s : fast.per_iteration) fast_osr += s.osr_transitions;
    for (const rt::ExecStats& s : ref.per_iteration) ref_osr += s.osr_transitions;
  }
  EXPECT_GT(fast_osr, 0u) << "OSR config never transitioned; thresholds too high?";
  EXPECT_EQ(fast_osr, ref_osr);
}

rt::ExecStats run_plain(const bc::Program& prog, rt::EngineKind engine, bool with_icache,
                        std::vector<std::int64_t>* globals_out = nullptr) {
  static const rt::MachineModel machine = rt::pentium4_model();
  test::IdentitySource source(prog);
  std::optional<rt::ICache> icache;
  if (with_icache) {
    icache.emplace(machine.icache_bytes, machine.icache_line_bytes, machine.icache_assoc);
  }
  rt::InterpreterOptions opts;
  opts.engine = engine;
  rt::Interpreter interp(prog, machine, source, icache ? &*icache : nullptr, opts);
  const rt::ExecStats stats = interp.run();
  if (globals_out != nullptr) *globals_out = interp.globals();
  return stats;
}

TEST(EngineEquivalence, FuzzedProgramsIdenticalWithAndWithoutICache) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    fuzz::GeneratorSpec spec;
    spec.seed = seed;
    const bc::Program prog = fuzz::generate_adversarial(spec);
    for (const bool with_icache : {false, true}) {
      std::vector<std::int64_t> fast_globals;
      std::vector<std::int64_t> ref_globals;
      const rt::ExecStats fast =
          run_plain(prog, rt::EngineKind::kFast, with_icache, &fast_globals);
      const rt::ExecStats ref =
          run_plain(prog, rt::EngineKind::kReference, with_icache, &ref_globals);
      EXPECT_TRUE(fast == ref) << "seed " << seed << " icache " << with_icache;
      EXPECT_EQ(fast_globals, ref_globals) << "seed " << seed;
    }
  }
}

// The fast engine tracks the budget as a countdown register; the observable
// contract (throws while executing instruction budget+1, same message) must
// not drift from the reference.
TEST(EngineEquivalence, BudgetTrapMessageIdentical) {
  const bc::Program prog = test::make_loop_program(1'000'000);
  std::string messages[2];
  int i = 0;
  for (const rt::EngineKind engine : {rt::EngineKind::kFast, rt::EngineKind::kReference}) {
    test::IdentitySource source(prog);
    rt::InterpreterOptions opts;
    opts.engine = engine;
    opts.max_instructions = 10'000;
    rt::Interpreter interp(prog, rt::pentium4_model(), source, nullptr, opts);
    try {
      interp.run();
      FAIL() << "budget did not trip under " << rt::engine_name(engine);
    } catch (const Error& e) {
      messages[i++] = e.what();
    }
  }
  EXPECT_EQ(messages[0], messages[1]);
  EXPECT_NE(messages[0].find("instruction budget exceeded"), std::string::npos);
}

TEST(EngineEquivalence, StackOverflowTrapMessageIdentical) {
  // main() calls itself forever: trips max_frames, never the budget.
  bc::ProgramBuilder pb("inf_rec", 0);
  pb.method("spin", 0, 0).call("spin", 0).ret();
  pb.method("main", 0, 0).call("spin", 0).halt();
  pb.entry("main");
  const bc::Program prog = pb.build();
  std::string messages[2];
  int i = 0;
  for (const rt::EngineKind engine : {rt::EngineKind::kFast, rt::EngineKind::kReference}) {
    test::IdentitySource source(prog);
    rt::InterpreterOptions opts;
    opts.engine = engine;
    opts.max_frames = 64;
    rt::Interpreter interp(prog, rt::pentium4_model(), source, nullptr, opts);
    try {
      interp.run();
      FAIL() << "recursion did not trip max_frames under " << rt::engine_name(engine);
    } catch (const Error& e) {
      messages[i++] = e.what();
    }
  }
  // ITH_CHECK prefixes file:line, which rightly differs per engine; the
  // message text after the location must match.
  for (std::string& m : messages) {
    const std::size_t at = m.find("simulated stack overflow");
    ASSERT_NE(at, std::string::npos) << m;
    m = m.substr(at);
  }
  EXPECT_EQ(messages[0], messages[1]);
}

TEST(EngineEquivalence, FacadeReportsSelectedEngine) {
  const bc::Program prog = test::make_add_program();
  test::IdentitySource source(prog);
  rt::InterpreterOptions opts;
  opts.engine = rt::EngineKind::kReference;
  rt::Interpreter ref(prog, rt::pentium4_model(), source, nullptr, opts);
  EXPECT_EQ(ref.engine_kind(), rt::EngineKind::kReference);
  EXPECT_STREQ(rt::engine_name(rt::EngineKind::kFast), "fast");
  EXPECT_STREQ(rt::engine_name(rt::EngineKind::kReference), "reference");
  // Default options select the fast engine.
  test::IdentitySource source2(prog);
  rt::Interpreter fast(prog, rt::pentium4_model(), source2, nullptr);
  EXPECT_EQ(fast.engine_kind(), rt::EngineKind::kFast);
}

}  // namespace
}  // namespace ith
