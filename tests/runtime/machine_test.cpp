// MachineModel, CompiledMethod and ProfileData tests.
#include <gtest/gtest.h>

#include "bytecode/size_estimator.hpp"
#include "runtime/compiled.hpp"
#include "runtime/machine.hpp"
#include "runtime/profile.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace ith::rt {
namespace {

TEST(MachineModel, ArchitecturesDifferAsThePaperArgues) {
  const MachineModel x86 = pentium4_model();
  const MachineModel ppc = ppc_g4_model();
  EXPECT_GT(x86.icache_bytes, ppc.icache_bytes) << "PPC has the smaller I-cache (Table 4 narrative)";
  EXPECT_GT(x86.call_overhead_cycles, ppc.call_overhead_cycles) << "deeper pipeline on P4";
  EXPECT_GT(x86.clock_hz, ppc.clock_hz);
}

TEST(MachineModel, OptCompileIsSuperlinear) {
  const MachineModel m = pentium4_model();
  const auto small = m.opt_compile_cycles(100);
  const auto large = m.opt_compile_cycles(1000);
  EXPECT_GT(static_cast<double>(large), 10.0 * static_cast<double>(small))
      << "10x the code must cost more than 10x the compile time";
}

TEST(MachineModel, BaselineCompileIsLinear) {
  const MachineModel m = pentium4_model();
  EXPECT_EQ(m.baseline_compile_cycles(200), 2 * m.baseline_compile_cycles(100));
}

TEST(MachineModel, OptCompileSlowerPerWordThanBaseline) {
  const MachineModel m = pentium4_model();
  EXPECT_GT(m.opt_compile_cycles(100), m.baseline_compile_cycles(100));
}

TEST(MachineModel, TierLadderIsOrdered) {
  // O0 -> O1 -> O2: code quality improves, compile cost grows.
  const MachineModel m = pentium4_model();
  EXPECT_GT(m.baseline_cpi, m.mid_cpi);
  EXPECT_GT(m.mid_cpi, m.opt_cpi);
  EXPECT_LT(m.baseline_compile_cycles(200), m.mid_compile_cycles(200));
  EXPECT_LT(m.mid_compile_cycles(200), m.opt_compile_cycles(200));
}

TEST(MachineModel, MidCompileIsFractionOfFull) {
  const MachineModel m = pentium4_model();
  EXPECT_NEAR(static_cast<double>(m.mid_compile_cycles(500)),
              m.mid_compile_fraction * static_cast<double>(m.opt_compile_cycles(500)),
              2.0);
}

TEST(MachineModel, CyclesToSeconds) {
  const MachineModel m = pentium4_model();
  EXPECT_NEAR(m.cycles_to_seconds(static_cast<std::uint64_t>(m.clock_hz)), 1.0, 1e-9);
}

TEST(CompiledMethod, FinalizeBuildsWordOffsets) {
  const bc::Program p = ith::test::make_add_program();
  CompiledMethod cm;
  cm.body = p.method(p.entry());
  cm.tier = Tier::kOpt;
  cm.method_id = p.entry();
  cm.finalize();
  ASSERT_EQ(cm.word_offset.size(), cm.body.size() + 1);
  EXPECT_EQ(cm.word_offset.front(), static_cast<std::uint32_t>(bc::kFrameOverheadWords));
  EXPECT_EQ(cm.size_words(), static_cast<std::uint32_t>(bc::estimated_method_size(cm.body)));
  for (std::size_t pc = 0; pc < cm.body.size(); ++pc) {
    EXPECT_LE(cm.word_offset[pc], cm.word_offset[pc + 1]);
  }
}

TEST(CompiledMethod, SizeWordsRequiresFinalize) {
  CompiledMethod cm;
  EXPECT_THROW(cm.size_words(), Error);
}

TEST(CompiledMethod, OriginLengthMismatchRejected) {
  const bc::Program p = ith::test::make_add_program();
  CompiledMethod cm;
  cm.body = p.method(p.entry());
  cm.origin.resize(1);  // wrong length
  EXPECT_THROW(cm.finalize(), Error);
}

TEST(ProfileData, CountersAccumulate) {
  ProfileData prof(3);
  prof.record_invocation(1);
  prof.record_invocation(1);
  prof.record_back_edge(1);
  EXPECT_EQ(prof.invocations(1), 2u);
  EXPECT_EQ(prof.back_edges(1), 1u);
  EXPECT_EQ(prof.hot_score(1), 3u);
  EXPECT_EQ(prof.hot_score(0), 0u);
}

TEST(ProfileData, SiteCounts) {
  ProfileData prof(2);
  prof.record_call_site(0, 4);
  prof.record_call_site(0, 4);
  prof.record_call_site(1, 0);
  EXPECT_EQ(prof.site_count(0, 4), 2u);
  EXPECT_EQ(prof.site_count(1, 0), 1u);
  EXPECT_EQ(prof.site_count(0, 5), 0u);
}

TEST(ProfileData, SyntheticOriginsIgnored) {
  ProfileData prof(2);
  prof.record_call_site(-1, -1);  // synthetic instruction: no attribution
  EXPECT_EQ(prof.site_count(-1, -1), 0u);
}

TEST(ProfileData, ClearResets) {
  ProfileData prof(2);
  prof.record_invocation(0);
  prof.record_call_site(0, 1);
  prof.clear();
  EXPECT_EQ(prof.invocations(0), 0u);
  EXPECT_EQ(prof.site_count(0, 1), 0u);
}

TEST(ProfileData, BoundsChecked) {
  ProfileData prof(2);
  EXPECT_THROW(prof.record_invocation(2), Error);
  EXPECT_THROW(prof.invocations(-1), Error);
}

}  // namespace
}  // namespace ith::rt
