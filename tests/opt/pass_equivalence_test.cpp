// Per-pass behavioural-equivalence property sweep: every scalar pass,
// applied alone (plus compaction) to every method of randomly generated
// programs, must keep the program verifiable and its result unchanged.
// The whole-pipeline version lives in optimizer_test.cpp; this narrows a
// failure to the individual pass.
#include <gtest/gtest.h>

#include <functional>

#include "bytecode/verifier.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"
#include "testing.hpp"
#include "workloads/synthetic.hpp"

namespace ith::opt {
namespace {

using PassFn = std::function<std::size_t(AnnotatedMethod&)>;

struct PassCase {
  const char* name;
  PassFn run;
};

const std::vector<PassCase>& passes() {
  static const std::vector<PassCase> kPasses = {
      {"constant_fold", [](AnnotatedMethod& am) { return constant_fold(am); }},
      {"simplify_algebraic", [](AnnotatedMethod& am) { return simplify_algebraic(am); }},
      {"fuse_compare_branch", [](AnnotatedMethod& am) { return fuse_compare_branch(am); }},
      {"copy_propagate", [](AnnotatedMethod& am) { return copy_propagate(am); }},
      {"eliminate_dead_stores", [](AnnotatedMethod& am) { return eliminate_dead_stores(am); }},
      {"simplify_branches", [](AnnotatedMethod& am) { return simplify_branches(am); }},
      {"eliminate_unreachable", [](AnnotatedMethod& am) { return eliminate_unreachable(am); }},
  };
  return kPasses;
}

struct SweepCase {
  std::uint64_t seed;
  std::size_t pass_index;
};

class PassEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PassEquivalence, SinglePassPreservesBehaviour) {
  const SweepCase c = GetParam();
  wl::SyntheticSpec spec;
  spec.seed = c.seed;
  spec.n_leaves = 7;
  spec.n_chains = 2;
  spec.n_dispatchers = 1;
  spec.n_recursive = 1;
  spec.n_blobs = 1;
  spec.hot_iters = 9;
  const bc::Program p = wl::make_synthetic(spec);
  const std::int64_t expected = ith::test::run_exit_value(p);

  const PassCase& pass = passes()[c.pass_index];
  bc::Program q = p;
  for (std::size_t i = 0; i < p.num_methods(); ++i) {
    AnnotatedMethod am =
        AnnotatedMethod::from_method(p.method(static_cast<bc::MethodId>(i)),
                                     static_cast<bc::MethodId>(i));
    pass.run(am);
    compact_nops(am);
    ASSERT_TRUE(am.consistent()) << pass.name;
    q.mutable_method(static_cast<bc::MethodId>(i)) = am.method;
  }
  ASSERT_NO_THROW(bc::verify_program(q)) << pass.name << " seed=" << c.seed;
  EXPECT_EQ(ith::test::run_exit_value(q), expected) << pass.name << " seed=" << c.seed;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::size_t pi = 0; pi < passes().size(); ++pi) {
      cases.push_back({seed, pi});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPassesAllSeeds, PassEquivalence, ::testing::ValuesIn(sweep_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return std::string(passes()[info.param.pass_index].name) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

// Passes must be idempotent after compaction settles: a second application
// finds nothing new once the first (plus compaction) reached a fixpoint.
TEST(PassFixpoint, EachPassReachesAFixpoint) {
  wl::SyntheticSpec spec;
  spec.seed = 3;
  const bc::Program p = wl::make_synthetic(spec);
  for (const PassCase& pass : passes()) {
    for (std::size_t i = 0; i < p.num_methods(); ++i) {
      AnnotatedMethod am =
          AnnotatedMethod::from_method(p.method(static_cast<bc::MethodId>(i)),
                                       static_cast<bc::MethodId>(i));
      // Iterate pass+compact until quiet; must terminate quickly.
      int rounds = 0;
      while (pass.run(am) + compact_nops(am) > 0) {
        ASSERT_LT(++rounds, 50) << pass.name << " did not reach a fixpoint";
      }
      EXPECT_EQ(pass.run(am), 0u) << pass.name << " found work after its own fixpoint";
    }
  }
}

}  // namespace
}  // namespace ith::opt
