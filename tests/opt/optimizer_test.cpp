// Optimizer (pass manager) tests plus the central soundness property:
// for arbitrary generated programs and arbitrary heuristic settings, the
// optimized program verifies and computes the same exit value.
#include "opt/optimizer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

#include "bytecode/size_estimator.hpp"
#include "bytecode/verifier.hpp"
#include "heuristics/heuristic.hpp"
#include "testing.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace ith::opt {
namespace {

/// Optimizes every method of `prog` under `h` and returns the runnable result.
bc::Program optimize_whole_program(const bc::Program& prog, const heur::InlineHeuristic& h,
                                   OptimizerOptions options = {}) {
  const Optimizer optimizer(prog, h, cold_site, options);
  bc::Program out = prog;
  for (std::size_t i = 0; i < prog.num_methods(); ++i) {
    out.mutable_method(static_cast<bc::MethodId>(i)) =
        optimizer.optimize(static_cast<bc::MethodId>(i)).body.method;
  }
  return out;
}

TEST(Optimizer, FoldsThroughInlinedArguments) {
  // main calls add2(2,3): after inlining + copy-prop + folding the whole
  // thing should reduce to pushing the constant 5.
  const bc::Program p = ith::test::make_add_program();
  heur::AlwaysInlineHeuristic h;
  const Optimizer optimizer(p, h);
  const OptimizeResult r = optimizer.optimize(p.entry());
  bc::Program q = p;
  q.mutable_method(q.entry()) = r.body.method;
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), 5);
  // The optimized entry should be tiny: const 5; halt.
  EXPECT_LE(q.method(q.entry()).size(), 2u)
      << "inlining should enable complete constant folding here";
}

TEST(Optimizer, ReducesDynamicWorkOnLoops) {
  const bc::Program p = ith::test::make_loop_program(50);
  heur::AlwaysInlineHeuristic h;
  const bc::Program q = optimize_whole_program(p, h);
  EXPECT_EQ(ith::test::run_exit_value(q), ith::test::run_exit_value(p));
  // Entry should contain no calls once square() is inlined.
  EXPECT_TRUE(q.method(q.entry()).call_sites().empty());
}

TEST(Optimizer, DisabledPassesDoNothing) {
  const bc::Program p = ith::test::make_add_program();
  heur::AlwaysInlineHeuristic h;
  OptimizerOptions off;
  off.enable_inlining = false;
  off.enable_folding = false;
  off.enable_copyprop = false;
  off.enable_dce = false;
  off.enable_branch_simplify = false;
  const Optimizer optimizer(p, h, cold_site, off);
  const OptimizeResult r = optimizer.optimize(p.entry());
  EXPECT_EQ(r.body.method, p.method(p.entry()));
  EXPECT_EQ(r.stats.folds, 0u);
}

TEST(Optimizer, StatsAccumulate) {
  const bc::Program p = ith::test::make_add_program();
  heur::AlwaysInlineHeuristic h;
  const Optimizer optimizer(p, h);
  const OptimizeResult r = optimizer.optimize(p.entry());
  EXPECT_EQ(r.stats.inline_stats.sites_inlined, 1u);
  EXPECT_GT(r.stats.copyprops + r.stats.folds, 0u);
  EXPECT_GT(r.stats.instructions_compacted, 0u);
  EXPECT_GE(r.stats.iterations, 1);
}

TEST(Optimizer, RejectsZeroIterations) {
  const bc::Program p = ith::test::make_add_program();
  heur::NeverInlineHeuristic h;
  OptimizerOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(Optimizer(p, h, cold_site, bad), ith::Error);
}

TEST(Optimizer, NeverHeuristicStillCleansUp) {
  // Even with inlining off, scalar passes fold main's own constants.
  bc::ProgramBuilder pb("c");
  pb.method("main", 0, 0).const_(2).const_(3).add().const_(4).mul().halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  heur::NeverInlineHeuristic h;
  const Optimizer optimizer(p, h);
  const OptimizeResult r = optimizer.optimize(p.entry());
  EXPECT_LE(r.body.method.size(), 2u);
  bc::Program q = p;
  q.mutable_method(q.entry()) = r.body.method;
  EXPECT_EQ(ith::test::run_exit_value(q), 20);
}

// --- Soundness property over generated programs -------------------------------

struct SoundnessCase {
  std::uint64_t program_seed;
  int callee_max;
  int always;
  int depth;
  int caller_max;
};

class OptimizerSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(OptimizerSoundness, OptimizedProgramVerifiesAndMatches) {
  const SoundnessCase c = GetParam();
  wl::SyntheticSpec spec;
  spec.seed = c.program_seed;
  spec.n_leaves = 8;
  spec.n_chains = 2;
  spec.chain_levels = 3;
  spec.n_dispatchers = 1;
  spec.n_recursive = 1;
  spec.n_blobs = 1;
  spec.hot_iters = 12;
  const bc::Program p = wl::make_synthetic(spec);

  heur::InlineParams params = heur::default_params();
  params.callee_max_size = c.callee_max;
  params.always_inline_size = c.always;
  params.max_inline_depth = c.depth;
  params.caller_max_size = c.caller_max;
  heur::JikesHeuristic h(params);

  const bc::Program q = optimize_whole_program(p, h);
  ASSERT_NO_THROW(bc::verify_program(q));
  EXPECT_EQ(ith::test::run_exit_value(q), ith::test::run_exit_value(p))
      << "seed=" << c.program_seed << " params=" << params.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, OptimizerSoundness,
    ::testing::Values(SoundnessCase{1, 23, 11, 5, 2048}, SoundnessCase{2, 50, 30, 15, 4000},
                      SoundnessCase{3, 1, 1, 1, 1}, SoundnessCase{4, 50, 1, 15, 4000},
                      SoundnessCase{5, 10, 9, 2, 100}, SoundnessCase{6, 35, 20, 8, 500},
                      SoundnessCase{7, 23, 11, 5, 2048}, SoundnessCase{8, 45, 2, 12, 3000},
                      SoundnessCase{9, 5, 4, 15, 4000}, SoundnessCase{10, 28, 14, 3, 64}));

// The same soundness property over the real benchmark programs with the
// default heuristic and an aggressive one.
class WorkloadSoundness : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSoundness, OptimizeWholeProgramPreservesBehaviour) {
  const bc::Program p = wl::make_workload(GetParam()).program;
  const std::int64_t expected = ith::test::run_exit_value(p);

  for (int aggressive = 0; aggressive < 2; ++aggressive) {
    heur::InlineParams params = heur::default_params();
    if (aggressive) {
      params.callee_max_size = 50;
      params.always_inline_size = 30;
      params.max_inline_depth = 15;
      params.caller_max_size = 4000;
    }
    heur::JikesHeuristic h(params);
    const bc::Program q = optimize_whole_program(p, h);
    ASSERT_NO_THROW(bc::verify_program(q));
    EXPECT_EQ(ith::test::run_exit_value(q), expected) << GetParam() << " aggressive=" << aggressive;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSoundness,
                         ::testing::Values("compress", "jess", "db", "javac", "mpegaudio",
                                           "raytrace", "jack", "antlr", "fop", "jython", "pmd",
                                           "ps", "ipsixql", "pseudojbb"));

}  // namespace
}  // namespace ith::opt
