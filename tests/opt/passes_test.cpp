// Scalar-pass unit tests: each pass's rewrites, target-safety rules, and
// behaviour preservation.
#include "opt/passes.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

#include "bytecode/builder.hpp"
#include "bytecode/verifier.hpp"
#include "testing.hpp"

namespace ith::opt {
namespace {

using bc::Instruction;
using bc::Op;

AnnotatedMethod annotate(std::vector<Instruction> code, int num_args = 0, int num_locals = 2) {
  bc::Method m("m", num_args, num_locals);
  for (const Instruction& insn : code) m.append(insn);
  return AnnotatedMethod::from_method(m, 0);
}

std::vector<Op> ops_of(const AnnotatedMethod& am) {
  std::vector<Op> ops;
  for (const Instruction& insn : am.method.code()) ops.push_back(insn.op);
  return ops;
}

// --- constant_fold ------------------------------------------------------------

TEST(ConstantFold, FoldsBinaryArithmetic) {
  AnnotatedMethod am = annotate({{Op::kConst, 6, 0}, {Op::kConst, 7, 0}, {Op::kMul, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(constant_fold(am), 1u);
  compact_nops(am);
  ASSERT_EQ(am.method.size(), 2u);
  EXPECT_EQ(am.method.code()[0], (Instruction{Op::kConst, 42, 0}));
}

TEST(ConstantFold, FoldsIteratively) {
  // (2+3)*4 folds in two rounds.
  AnnotatedMethod am = annotate({{Op::kConst, 2, 0}, {Op::kConst, 3, 0}, {Op::kAdd, 0, 0},
                                 {Op::kConst, 4, 0}, {Op::kMul, 0, 0}, {Op::kHalt, 0, 0}});
  std::size_t total = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t n = constant_fold(am);
    total += n;
    compact_nops(am);
    if (n == 0) break;
  }
  EXPECT_EQ(total, 2u);
  ASSERT_EQ(am.method.size(), 2u);
  EXPECT_EQ(am.method.code()[0].a, 20);
}

TEST(ConstantFold, DivisionByZeroFoldsToZero) {
  AnnotatedMethod am = annotate({{Op::kConst, 5, 0}, {Op::kConst, 0, 0}, {Op::kDiv, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(constant_fold(am), 1u);
  compact_nops(am);
  EXPECT_EQ(am.method.code()[0].a, 0);
}

TEST(ConstantFold, SkipsWhenMidPatternTargeted) {
  // A branch lands on the second const: the pair cannot fold.
  AnnotatedMethod am = annotate({
      {Op::kLoad, 0, 0},    // 0 (not const, so the const;jz pattern can't fire)
      {Op::kJz, 3, 0},      // 1 (target the const at 3)
      {Op::kConst, 6, 0},   // 2
      {Op::kConst, 7, 0},   // 3 <- branch target
      {Op::kMul, 0, 0},     // 4
      {Op::kHalt, 0, 0},    // 5
  });
  // Pattern (2,3,4) is blocked because pc 3 is targeted.
  EXPECT_EQ(constant_fold(am), 0u);
}

TEST(ConstantFold, FoldsConstantBranch) {
  AnnotatedMethod am = annotate({{Op::kConst, 0, 0}, {Op::kJz, 3, 0}, {Op::kNop, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(constant_fold(am), 1u);
  // const 0; jz -> taken -> becomes nop; jmp.
  EXPECT_EQ(am.method.code()[1], (Instruction{Op::kJmp, 3, 0}));
  EXPECT_EQ(am.method.code()[0].op, Op::kNop);
}

TEST(ConstantFold, FoldsUntakenConstantBranch) {
  AnnotatedMethod am = annotate({{Op::kConst, 5, 0}, {Op::kJz, 3, 0}, {Op::kNop, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(constant_fold(am), 1u);
  EXPECT_EQ(am.method.code()[0].op, Op::kNop);
  EXPECT_EQ(am.method.code()[1].op, Op::kNop);
}

TEST(ConstantFold, NegationFolds) {
  AnnotatedMethod am = annotate({{Op::kConst, 9, 0}, {Op::kNeg, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(constant_fold(am), 1u);
  compact_nops(am);
  EXPECT_EQ(am.method.code()[0].a, -9);
}

TEST(ConstantFold, DiscardedValuesVanish) {
  AnnotatedMethod am = annotate({{Op::kConst, 9, 0}, {Op::kPop, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(constant_fold(am), 1u);
  compact_nops(am);
  EXPECT_EQ(ops_of(am), (std::vector<Op>{Op::kHalt}));
}

TEST(ConstantFold, BinopPopBecomesTwoPops) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kLoad, 1, 0}, {Op::kAdd, 0, 0},
                                 {Op::kPop, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_GE(constant_fold(am), 1u);
  bc::Program p("t");
  p.add_method(am.method);
  p.set_entry(0);
  EXPECT_NO_THROW(bc::verify_method(p, 0));
}

// --- copy_propagate ------------------------------------------------------------

TEST(CopyPropagate, LoadStoreSameSlotRemoved) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kStore, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(copy_propagate(am), 1u);
  compact_nops(am);
  EXPECT_EQ(ops_of(am), (std::vector<Op>{Op::kHalt}));
}

TEST(CopyPropagate, StoreLoadRemovedWhenSlotOtherwiseUnread) {
  AnnotatedMethod am = annotate({{Op::kConst, 5, 0}, {Op::kStore, 1, 0}, {Op::kLoad, 1, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(copy_propagate(am), 1u);
  compact_nops(am);
  EXPECT_EQ(ops_of(am), (std::vector<Op>{Op::kConst, Op::kHalt}));
}

TEST(CopyPropagate, StoreLoadKeptWhenSlotReadElsewhere) {
  AnnotatedMethod am = annotate({{Op::kConst, 5, 0}, {Op::kStore, 1, 0}, {Op::kLoad, 1, 0},
                                 {Op::kLoad, 1, 0}, {Op::kAdd, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(copy_propagate(am), 0u);
}

TEST(CopyPropagate, RespectsBranchTargets) {
  AnnotatedMethod am = annotate({
      {Op::kConst, 1, 0},  // 0
      {Op::kJz, 2, 0},     // 1: targets the store below
      {Op::kLoad, 0, 0},   // this pc is never reached... reorder: target mid-pair
  });
  // Construct explicitly: load;store pair where store is a branch target.
  am = annotate({
      {Op::kConst, 0, 0},  // 0
      {Op::kJz, 3, 0},     // 1 -> store at 3 is targeted
      {Op::kLoad, 0, 0},   // 2
      {Op::kStore, 0, 0},  // 3 (targeted; depth differs across paths... )
      {Op::kHalt, 0, 0},   // 4
  });
  EXPECT_EQ(copy_propagate(am), 0u);
}

// --- eliminate_dead_stores -------------------------------------------------------

TEST(DeadStores, UnreadSlotStoreBecomesPop) {
  AnnotatedMethod am = annotate({{Op::kConst, 5, 0}, {Op::kStore, 1, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(eliminate_dead_stores(am), 1u);
  EXPECT_EQ(am.method.code()[1].op, Op::kPop);
}

TEST(DeadStores, ReadSlotKept) {
  AnnotatedMethod am = annotate({{Op::kConst, 5, 0}, {Op::kStore, 1, 0}, {Op::kLoad, 1, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(eliminate_dead_stores(am), 0u);
}

// --- simplify_branches --------------------------------------------------------------

TEST(SimplifyBranches, JumpToNextBecomesNop) {
  AnnotatedMethod am = annotate({{Op::kJmp, 1, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(simplify_branches(am), 1u);
  EXPECT_EQ(am.method.code()[0].op, Op::kNop);
}

TEST(SimplifyBranches, ConditionalToNextBecomesPop) {
  AnnotatedMethod am = annotate({{Op::kConst, 1, 0}, {Op::kJz, 2, 0}, {Op::kHalt, 0, 0}});
  EXPECT_GE(simplify_branches(am), 1u);
  EXPECT_EQ(am.method.code()[1].op, Op::kPop);
}

TEST(SimplifyBranches, ThreadsJumpChains) {
  AnnotatedMethod am = annotate({
      {Op::kJmp, 2, 0},   // 0 -> 2 -> 4
      {Op::kHalt, 0, 0},  // 1
      {Op::kJmp, 4, 0},   // 2
      {Op::kHalt, 0, 0},  // 3
      {Op::kHalt, 0, 0},  // 4
  });
  EXPECT_GE(simplify_branches(am), 1u);
  EXPECT_EQ(am.method.code()[0].a, 4);
}

TEST(SimplifyBranches, JmpSelfLoopDoesNotHang) {
  AnnotatedMethod am = annotate({{Op::kJmp, 0, 0}});
  simplify_branches(am);  // must terminate
  EXPECT_EQ(am.method.code()[0].op, Op::kJmp);
}

// --- eliminate_unreachable -----------------------------------------------------------

TEST(Unreachable, DeadCodeAfterJmpRemoved) {
  AnnotatedMethod am = annotate({{Op::kJmp, 3, 0}, {Op::kConst, 1, 0}, {Op::kPop, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(eliminate_unreachable(am), 2u);
  EXPECT_EQ(am.method.code()[1].op, Op::kNop);
  EXPECT_EQ(am.method.code()[2].op, Op::kNop);
}

TEST(Unreachable, BranchTargetsStayReachable) {
  AnnotatedMethod am = annotate({{Op::kConst, 1, 0}, {Op::kJz, 3, 0}, {Op::kHalt, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(eliminate_unreachable(am), 0u);
}

// --- compact_nops --------------------------------------------------------------------

TEST(Compact, RemovesNopsAndRebasesTargets) {
  AnnotatedMethod am = annotate({
      {Op::kNop, 0, 0},    // 0
      {Op::kConst, 1, 0},  // 1
      {Op::kNop, 0, 0},    // 2
      {Op::kJz, 5, 0},     // 3 -> halt at 5
      {Op::kNop, 0, 0},    // 4
      {Op::kHalt, 0, 0},   // 5
  });
  EXPECT_EQ(compact_nops(am), 3u);
  ASSERT_EQ(am.method.size(), 3u);
  EXPECT_EQ(am.method.code()[1].op, Op::kJz);
  EXPECT_EQ(am.method.code()[1].a, 2);  // halt moved to index 2
}

TEST(Compact, TargetOnNopMapsToNextKept) {
  AnnotatedMethod am = annotate({
      {Op::kConst, 0, 0},  // 0
      {Op::kJz, 2, 0},     // 1 -> nop at 2, should land on halt
      {Op::kNop, 0, 0},    // 2
      {Op::kHalt, 0, 0},   // 3
  });
  compact_nops(am);
  EXPECT_EQ(am.method.code()[1].a, 2);
  EXPECT_EQ(am.method.code()[2].op, Op::kHalt);
}

TEST(Compact, NoNopsIsNoop) {
  AnnotatedMethod am = annotate({{Op::kConst, 1, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(compact_nops(am), 0u);
  EXPECT_EQ(am.method.size(), 2u);
}

TEST(Compact, KeepsMetaAligned) {
  AnnotatedMethod am = annotate({{Op::kNop, 0, 0}, {Op::kConst, 1, 0}, {Op::kHalt, 0, 0}});
  am.meta[1].depth = 7;  // marker
  compact_nops(am);
  ASSERT_TRUE(am.consistent());
  EXPECT_EQ(am.meta[0].depth, 7);
}

}  // namespace
}  // namespace ith::opt
