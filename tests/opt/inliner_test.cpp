// Inliner correctness: the transformed body must verify and compute the
// same values, call sites must disappear, and the structural guards
// (recursion, depth, shape) must hold.
#include "opt/inliner.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

#include "bytecode/size_estimator.hpp"
#include "bytecode/verifier.hpp"
#include "heuristics/heuristic.hpp"
#include "testing.hpp"

namespace ith::opt {
namespace {

/// Replaces method `id`'s body with the inlined version and returns the
/// resulting runnable program.
bc::Program with_inlined(const bc::Program& prog, bc::MethodId id,
                         const heur::InlineHeuristic& h, InlineStats* stats = nullptr,
                         InlineLimits limits = {}) {
  const Inliner inliner(prog, h, cold_site, limits);
  AnnotatedMethod am = inliner.run(id, stats);
  bc::Program out = prog;
  out.mutable_method(id) = am.method;
  return out;
}

TEST(Inliner, InlinesSimpleCall) {
  const bc::Program p = ith::test::make_add_program();
  heur::AlwaysInlineHeuristic h;
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.entry(), h, &stats);
  EXPECT_EQ(stats.sites_inlined, 1u);
  EXPECT_TRUE(q.method(q.entry()).call_sites().empty());
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), 5);
}

TEST(Inliner, NeverHeuristicLeavesBodyUntouched) {
  const bc::Program p = ith::test::make_add_program();
  heur::NeverInlineHeuristic h;
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.entry(), h, &stats);
  EXPECT_EQ(stats.sites_inlined, 0u);
  EXPECT_EQ(stats.sites_refused_by_heuristic, 1u);
  EXPECT_EQ(q.method(q.entry()), p.method(p.entry()));
}

TEST(Inliner, PreservesLoopSemantics) {
  const bc::Program p = ith::test::make_loop_program(17);
  heur::AlwaysInlineHeuristic h;
  const bc::Program q = with_inlined(p, p.entry(), h);
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), ith::test::run_exit_value(p));
}

TEST(Inliner, GrowsLocalSpaceForCalleeFrames) {
  const bc::Program p = ith::test::make_add_program();
  heur::AlwaysInlineHeuristic h;
  const bc::Program q = with_inlined(p, p.entry(), h);
  EXPECT_GE(q.method(q.entry()).num_locals(),
            p.method(p.entry()).num_locals() + p.method(p.find_method("add2")).num_locals());
}

TEST(Inliner, DepthIsTracked) {
  // chain: main -> a -> b, all inlinable: depth 2 reached.
  bc::ProgramBuilder pb("chain");
  pb.method("b", 1, 1).load(0).const_(1).add().ret();
  pb.method("a", 1, 1).load(0).call("b", 1).ret();
  pb.method("main", 0, 0).const_(5).call("a", 1).halt();
  pb.entry("main");
  const bc::Program p = pb.build();

  heur::AlwaysInlineHeuristic h;
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.entry(), h, &stats);
  EXPECT_EQ(stats.max_depth_reached, 2);
  EXPECT_EQ(ith::test::run_exit_value(q), 6);
}

TEST(Inliner, DepthCapStopsRecursiveExpansion) {
  const bc::Program p = ith::test::make_fib_program(8);
  heur::AlwaysInlineHeuristic h(/*depth_cap=*/15);
  InlineLimits limits;
  limits.hard_depth_cap = 6;
  limits.max_recursive_occurrences = 3;
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.find_method("fib"), h, &stats, limits);
  EXPECT_LE(stats.max_depth_reached, 6);
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), ith::test::run_exit_value(p));
}

TEST(Inliner, RecursionGuardDefaultAllowsOneLevel) {
  const bc::Program p = ith::test::make_fib_program(8);
  heur::AlwaysInlineHeuristic h;
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.find_method("fib"), h, &stats);
  // fib may be spliced into itself once (chain [fib]); the next level is
  // refused because fib already appears on the chain.
  EXPECT_GT(stats.sites_refused_structural, 0u);
  EXPECT_EQ(ith::test::run_exit_value(q), ith::test::run_exit_value(p));
}

TEST(Inliner, BodySizeCapRefusesGrowth) {
  const bc::Program p = ith::test::make_loop_program(5);
  heur::AlwaysInlineHeuristic h;
  InlineLimits limits;
  limits.max_body_words = 1;  // nothing may grow
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.entry(), h, &stats, limits);
  EXPECT_EQ(stats.sites_inlined, 0u);
  EXPECT_EQ(q.method(q.entry()), p.method(p.entry()));
}

TEST(Inliner, MultipleReturnsBecomeJumpsToLanding) {
  // Callee with two returns on different paths.
  bc::ProgramBuilder pb("multi");
  auto& f = pb.method("f", 1, 1);
  f.load(0).jz("zero");
  f.ret_const(10);
  f.label("zero");
  f.ret_const(20);
  pb.method("main", 0, 1)
      .const_(0)
      .call("f", 1)
      .const_(1)
      .call("f", 1)
      .add()
      .halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  EXPECT_EQ(ith::test::run_exit_value(p), 30);

  heur::AlwaysInlineHeuristic h;
  const Inliner inliner(p, h);
  AnnotatedMethod am = inliner.run(p.entry());
  bc::Program q = p;
  q.mutable_method(q.entry()) = am.method;
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), 30);
}

TEST(Inliner, HotOracleRoutesToFigure4) {
  // Heuristic that refuses everything cold but accepts hot sites.
  const bc::Program p = ith::test::make_add_program();
  heur::InlineParams params = heur::default_params();
  params.callee_max_size = 0;        // Figure 3 path refuses everything
  params.always_inline_size = 0;
  params.hot_callee_max_size = 400;  // Figure 4 path accepts
  heur::JikesHeuristic h(params);

  InlineStats cold_stats;
  const Inliner cold(p, h);
  cold.run(p.entry(), &cold_stats);
  EXPECT_EQ(cold_stats.sites_inlined, 0u);

  InlineStats hot_stats;
  const Inliner hot(p, h, [](bc::MethodId, std::int32_t) {
    return SiteProfile{true, 1000};
  });
  hot.run(p.entry(), &hot_stats);
  EXPECT_EQ(hot_stats.sites_inlined, 1u);
}

TEST(Inliner, IsInlinableRejectsHalt) {
  bc::ProgramBuilder pb("p");
  pb.method("stops", 0, 0).const_(1).halt();
  pb.method("main", 0, 0).call("stops", 0).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  EXPECT_FALSE(Inliner::is_inlinable(p, p.find_method("stops")));
  EXPECT_TRUE(Inliner::is_inlinable(p, p.find_method("main")) == false);  // also has halt
}

TEST(Inliner, IsInlinableAcceptsCleanMethods) {
  const bc::Program p = ith::test::make_fib_program();
  EXPECT_TRUE(Inliner::is_inlinable(p, p.find_method("fib")));
}

TEST(Inliner, StatsSizesAreConsistent) {
  const bc::Program p = ith::test::make_add_program();
  heur::AlwaysInlineHeuristic h;
  InlineStats stats;
  with_inlined(p, p.entry(), h, &stats);
  EXPECT_EQ(stats.size_before_words, bc::estimated_method_size(p.method(p.entry())));
  EXPECT_GT(stats.size_after_words, 0);
  EXPECT_EQ(stats.sites_considered,
            stats.sites_inlined + stats.sites_refused_by_heuristic + stats.sites_refused_structural);
}

TEST(Inliner, CallerSizeSeenByHeuristicGrowsDuringSession) {
  // A heuristic with a caller-size cap: after enough splices the cap binds.
  bc::ProgramBuilder pb("grow");
  pb.method("leaf", 1, 1).load(0).const_(1).add().load(0).mul().ret();
  auto& m = pb.method("main", 0, 1);
  m.const_(1).store(0);
  for (int i = 0; i < 12; ++i) {
    m.load(0).call("leaf", 1).store(0);
  }
  m.load(0).halt();
  pb.entry("main");
  const bc::Program p = pb.build();

  heur::InlineParams params = heur::default_params();
  params.always_inline_size = 1;  // no bypass
  params.callee_max_size = 50;
  params.caller_max_size = 100;  // above the initial body size; binds after a few splices
  heur::JikesHeuristic h(params);
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.entry(), h, &stats);
  EXPECT_GT(stats.sites_inlined, 0u);
  EXPECT_GT(stats.sites_refused_by_heuristic, 0u) << "caller cap should eventually bind";
  EXPECT_EQ(ith::test::run_exit_value(q), ith::test::run_exit_value(p));
}

TEST(Inliner, ZeroInitializesCalleeLocalsWhenSiteReExecutes) {
  // A real call starts from a zeroed frame every time; an inlined region
  // inside a loop re-executes with the caller's locals as they were left.
  // The callee reads non-arg local 1 before (conditionally) writing it, so
  // without an explicit clearing prologue the second trip would observe the
  // first trip's store. Found by the differential fuzzer (seed 2).
  bc::ProgramBuilder pb("stale");
  auto& f = pb.method("stale_reader", 1, 2);
  f.load(1).load(0).store(1).ret();  // returns old local1 (always 0), then local1 = arg
  auto& m = pb.method("main", 0, 2);
  m.const_(3).store(0).const_(0).store(1);
  m.label("head");
  m.load(0).jz("done");
  m.load(1).const_(5).call("stale_reader", 1).add().store(1);
  m.load(0).const_(1).sub().store(0);
  m.jmp("head");
  m.label("done");
  m.load(1).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  ASSERT_EQ(ith::test::run_exit_value(p), 0);  // every activation returns 0

  heur::AlwaysInlineHeuristic h;
  InlineStats stats;
  const bc::Program q = with_inlined(p, p.entry(), h, &stats);
  ASSERT_EQ(stats.sites_inlined, 1u);
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), 0)
      << "inlined loop body leaked a local value between trips";
}

TEST(Inliner, SkipsClearingPrologueWhenLocalsAreDefinitelyAssigned) {
  // add2 writes nothing beyond its arguments, so the splice needs no
  // clearing prologue: the only kStores in the inlined entry are the two
  // argument marshalling stores.
  const bc::Program p = ith::test::make_add_program();
  heur::AlwaysInlineHeuristic h;
  const bc::Program q = with_inlined(p, p.entry(), h);
  std::size_t stores = 0;
  for (const bc::Instruction& insn : q.method(q.entry()).code()) {
    if (insn.op == bc::Op::kStore) ++stores;
  }
  EXPECT_EQ(stores, 2u);
}

}  // namespace
}  // namespace ith::opt
