// Partial inlining (the sixth tunable dimension): guard-head shape
// detection, behavioural equivalence of the head-splice + outlined-tail
// transformation on both the hot and the cold path, the structured report
// rows it emits, and the structural guard that keeps the residual stub call
// from being re-expanded.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "bytecode/size_estimator.hpp"
#include "bytecode/verifier.hpp"
#include "opt/analysis.hpp"
#include "opt/optimizer.hpp"
#include "testing.hpp"

namespace ith::opt {
namespace {

// guard(n): if (n < 10) return 0; else <heavy accumulation tail>.
// The first six instructions form a pure guard head (argument loads only,
// stack empty on the cold exit, one reachable kRet); the tail is fat enough
// that the default CALLEE_MAX_SIZE refuses a full inline.
bc::Program make_guard_program() {
  bc::ProgramBuilder pb("partial", 0);
  auto& g = pb.method("guard", 1, 2);
  g.load(0).const_(10).cmplt().jz("tail");
  g.const_(0).ret();
  g.label("tail");
  g.load(0).store(1);
  for (int i = 1; i <= 9; ++i) {
    g.load(1).const_(i).add().store(1);
  }
  g.load(1).ret();

  auto& m = pb.method("main", 0, 0);
  m.const_(3).call("guard", 1);   // hot path: head returns 0 inline
  m.const_(50).call("guard", 1);  // cold path: stub re-invokes the tail
  m.add().halt();
  pb.entry("main");
  return pb.build();
}

heur::InlineParams partial_params() {
  heur::InlineParams p = heur::default_params();
  p.partial_max_head_size = 40;
  return p;
}

TEST(PartialShape, DetectsThePureGuardHead) {
  const bc::Program p = make_guard_program();
  const bc::MethodId guard = p.find_method("guard");
  const std::optional<PartialShape> shape = partial_inline_shape(p.method(guard));
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->head_len, 6);  // load const cmplt jz const ret
  EXPECT_GT(shape->head_words, 0);
  EXPECT_LT(shape->head_words, bc::estimated_method_size(p.method(guard)));

  // The guard must actually be too big for a full inline, or this file
  // tests nothing.
  EXPECT_GT(bc::estimated_method_size(p.method(guard)),
            heur::default_params().callee_max_size);
}

TEST(PartialShape, ImpureHeadHasNoShape) {
  bc::ProgramBuilder pb("noguard", 0);
  auto& f = pb.method("f", 1, 2);
  f.load(0).store(1).load(1).ret();  // store before the first ret: impure
  pb.method("main", 0, 0).const_(1).call("f", 1).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  EXPECT_FALSE(partial_inline_shape(p.method(p.find_method("f"))).has_value());
}

TEST(PartialInline, SpliceIsBehaviourallyEquivalentOnBothPaths) {
  const bc::Program p = make_guard_program();
  const std::int64_t expected = ith::test::run_exit_value(p);

  const heur::JikesHeuristic h(partial_params());
  const Optimizer optimizer(p, h);
  bc::Program q = p;
  std::size_t partials = 0;
  for (bc::MethodId id = 0; id < static_cast<bc::MethodId>(p.num_methods()); ++id) {
    const OptimizeResult r = optimizer.optimize(id);
    ASSERT_TRUE(r.body.consistent());
    partials += r.stats.inline_stats.sites_partially_inlined;
    q.mutable_method(id) = r.body.method;
  }
  ASSERT_GE(partials, 2u) << "both call sites should take the partial path";
  ASSERT_NO_THROW(bc::verify_program(q));
  EXPECT_EQ(ith::test::run_exit_value(q), expected);
}

TEST(PartialInline, StubKeepsTheResidualCallAndIsNotReExpanded) {
  const bc::Program p = make_guard_program();
  const bc::MethodId guard = p.find_method("guard");
  const heur::JikesHeuristic h(partial_params());
  const Optimizer optimizer(p, h);
  const OptimizeResult r = optimizer.optimize(p.find_method("main"));

  std::size_t residual_calls = 0;
  for (const bc::Instruction& insn : r.body.method.code()) {
    if (insn.op == bc::Op::kCall && insn.a == guard) ++residual_calls;
  }
  EXPECT_EQ(residual_calls, 2u) << "each partial splice leaves exactly one stub call";
  // The inliner revisits the spliced region; the stub call's chain already
  // holds the callee, so the recursion guard refuses it structurally.
  EXPECT_GE(r.stats.inline_stats.sites_refused_structural, 2u);
  EXPECT_EQ(r.stats.inline_stats.sites_partially_inlined, 2u);
}

TEST(PartialInline, ReportRecordsPartialOutcomes) {
  const bc::Program p = make_guard_program();
  const heur::JikesHeuristic h(partial_params());
  const Optimizer optimizer(p, h);
  InlineReport report;
  optimizer.optimize(p.find_method("main"), &report);

  std::size_t partial_rows = 0;
  for (const InlineReportEntry& e : report) {
    if (e.outcome != InlineReportEntry::Outcome::kPartial) continue;
    ++partial_rows;
    EXPECT_EQ(e.callee, p.find_method("guard"));
    EXPECT_GT(e.head_size, 0);
    EXPECT_NE(std::string(e.rule).find("partial_head"), std::string::npos);
  }
  EXPECT_EQ(partial_rows, 2u);
  const std::string text = format_inline_report(p, report);
  EXPECT_NE(text.find("partially inlined"), std::string::npos);
}

TEST(PartialInline, ZeroHeadBudgetDisablesTheSixthDimension) {
  const bc::Program p = make_guard_program();
  heur::InlineParams off = partial_params();
  off.partial_max_head_size = 0;
  const heur::JikesHeuristic h(off);
  const Optimizer optimizer(p, h);
  const OptimizeResult r = optimizer.optimize(p.find_method("main"));
  EXPECT_EQ(r.stats.inline_stats.sites_partially_inlined, 0u);
  // With partial off the too-big callee is refused outright, exactly the
  // five-parameter behaviour.
  EXPECT_EQ(r.stats.inline_stats.sites_inlined, 0u);
  EXPECT_GE(r.stats.inline_stats.sites_refused_by_heuristic, 2u);
}

}  // namespace
}  // namespace ith::opt
