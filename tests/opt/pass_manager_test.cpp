// PassManager redesign coverage: pipeline description round trips, the
// deprecated boolean-options bridge, bit-identity of the new pipeline
// against the frozen legacy orchestration (reference_optimize) for
// five-parameter genomes, analysis-cache reuse across compilations, the
// opt.analysis_* obs counters, and the stale-analysis detector that the
// PreservedAnalyses soundness property tests drive.
#include "opt/pipeline.hpp"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/campaign.hpp"
#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "opt/optimizer.hpp"
#include "support/error.hpp"
#include "testing.hpp"
#include "workloads/suite.hpp"

namespace ith::opt {
namespace {

// --- PipelineDesc ---------------------------------------------------------

TEST(PipelineDesc, StandardRoundTripsThroughText) {
  const PipelineDesc p = PipelineDesc::standard();
  const PipelineDesc q = PipelineDesc::parse(p.to_string());
  EXPECT_EQ(p, q);
  EXPECT_TRUE(p.has_pass("inline"));
  EXPECT_TRUE(p.has_pass("fold"));
  EXPECT_FALSE(p.has_pass("no_such_pass"));
}

TEST(PipelineDesc, ParseAcceptsMinimalShapes) {
  const PipelineDesc p = PipelineDesc::parse("inline,fixpoint(fold):2");
  EXPECT_EQ(p.setup, std::vector<std::string>{"inline"});
  EXPECT_EQ(p.fixpoint, std::vector<std::string>{"fold"});
  EXPECT_EQ(p.max_iterations, 2);
  EXPECT_EQ(PipelineDesc::parse(p.to_string()), p);

  const PipelineDesc empty = PipelineDesc::parse("fixpoint():1");
  EXPECT_TRUE(empty.setup.empty());
  EXPECT_TRUE(empty.fixpoint.empty());
}

TEST(PipelineDesc, ParseRejectsMalformedDescriptions) {
  EXPECT_THROW(PipelineDesc::parse("inline,fold"), Error);            // no fixpoint group
  EXPECT_THROW(PipelineDesc::parse("fixpoint(fold"), Error);          // unterminated
  EXPECT_THROW(PipelineDesc::parse("fixpoint(fold)"), Error);         // missing :N
  EXPECT_THROW(PipelineDesc::parse("fixpoint(fold):0"), Error);       // zero iterations
  EXPECT_THROW(PipelineDesc::parse("fixpoint(fold):x"), Error);       // bad number
  EXPECT_THROW(PipelineDesc::parse("bogus,fixpoint(fold):1"), Error); // unknown setup pass
  EXPECT_THROW(PipelineDesc::parse("fixpoint(bogus):1"), Error);      // unknown fixpoint pass
}

TEST(PipelineDesc, OptionsBridgeMapsEveryBoolean) {
  EXPECT_EQ(pipeline_from_options(OptimizerOptions{}), PipelineDesc::standard());

  OptimizerOptions o;
  o.enable_inlining = false;
  o.enable_folding = false;
  o.enable_tail_recursion = false;
  o.max_iterations = 3;
  const PipelineDesc p = pipeline_from_options(o);
  EXPECT_FALSE(p.has_pass("inline"));
  EXPECT_FALSE(p.has_pass("fold"));
  EXPECT_FALSE(p.has_pass("tail_recursion"));
  EXPECT_TRUE(p.has_pass("copyprop"));
  EXPECT_EQ(p.max_iterations, 3);

  // The textual identity is what the evaluator fingerprints, so distinct
  // boolean configurations must never collapse onto one string.
  OptimizerOptions o2 = o;
  o2.enable_dce = false;
  EXPECT_NE(pipeline_from_options(o).to_string(), pipeline_from_options(o2).to_string());
}

TEST(PipelineDesc, MakePassKnowsEveryRegisteredName) {
  for (const std::string& name : known_pass_names()) {
    const std::unique_ptr<Pass> pass = make_pass(name);
    ASSERT_NE(pass, nullptr);
    EXPECT_EQ(pass->name(), name);
  }
  EXPECT_THROW(make_pass("bogus"), Error);
}

// --- Bit-identity vs the frozen legacy orchestration ----------------------

void expect_identical(const bc::Program& prog, const heur::InlineParams& params,
                      const SiteOracle& oracle, const OptimizerOptions& options,
                      const std::string& label) {
  const heur::JikesHeuristic h(params);
  const InlineLimits limits{};
  const Optimizer optimizer(prog, h, oracle, options, limits);
  for (bc::MethodId id = 0; id < static_cast<bc::MethodId>(prog.num_methods()); ++id) {
    SCOPED_TRACE(label + ": method " + prog.method(id).name());
    const OptimizeResult got = optimizer.optimize(id);
    const OptimizeResult want = reference_optimize(prog, id, h, oracle, options, limits);
    ASSERT_EQ(got.body.method, want.body.method);
    ASSERT_EQ(got.body.meta.size(), want.body.meta.size());
    for (std::size_t pc = 0; pc < got.body.meta.size(); ++pc) {
      EXPECT_EQ(got.body.meta[pc].depth, want.body.meta[pc].depth) << "pc " << pc;
      EXPECT_EQ(got.body.meta[pc].origin_method, want.body.meta[pc].origin_method) << "pc " << pc;
      EXPECT_EQ(got.body.meta[pc].origin_pc, want.body.meta[pc].origin_pc) << "pc " << pc;
    }
    EXPECT_EQ(got.stats.inline_stats.sites_considered, want.stats.inline_stats.sites_considered);
    EXPECT_EQ(got.stats.inline_stats.sites_inlined, want.stats.inline_stats.sites_inlined);
    EXPECT_EQ(got.stats.inline_stats.sites_partially_inlined,
              want.stats.inline_stats.sites_partially_inlined);
    EXPECT_EQ(got.stats.inline_stats.size_after_words, want.stats.inline_stats.size_after_words);
    EXPECT_EQ(got.stats.folds, want.stats.folds);
    EXPECT_EQ(got.stats.copyprops, want.stats.copyprops);
    EXPECT_EQ(got.stats.dead_stores, want.stats.dead_stores);
    EXPECT_EQ(got.stats.branch_simplifications, want.stats.branch_simplifications);
    EXPECT_EQ(got.stats.algebraic_simplifications, want.stats.algebraic_simplifications);
    EXPECT_EQ(got.stats.compare_fusions, want.stats.compare_fusions);
    EXPECT_EQ(got.stats.tail_calls_eliminated, want.stats.tail_calls_eliminated);
    EXPECT_EQ(got.stats.unreachable_removed, want.stats.unreachable_removed);
    EXPECT_EQ(got.stats.instructions_compacted, want.stats.instructions_compacted);
    EXPECT_EQ(got.stats.iterations, want.stats.iterations);
  }
}

std::vector<heur::InlineParams> five_param_variants() {
  std::vector<heur::InlineParams> out;
  out.push_back(heur::default_params());

  heur::InlineParams aggressive;
  aggressive.callee_max_size = 500;
  aggressive.always_inline_size = 200;
  aggressive.max_inline_depth = 12;
  aggressive.caller_max_size = 100000;
  aggressive.hot_callee_max_size = 500;
  out.push_back(aggressive);

  heur::InlineParams stingy;
  stingy.callee_max_size = 1;
  stingy.always_inline_size = 0;
  stingy.max_inline_depth = 0;
  stingy.caller_max_size = 1;
  stingy.hot_callee_max_size = 1;
  out.push_back(stingy);
  return out;
}

std::vector<OptimizerOptions> option_variants() {
  OptimizerOptions all;  // every pass on, legacy defaults
  OptimizerOptions no_inline;
  no_inline.enable_inlining = false;
  OptimizerOptions scalar_mix;
  scalar_mix.enable_folding = false;
  scalar_mix.enable_algebraic = false;
  scalar_mix.enable_tail_recursion = false;
  OptimizerOptions one_iter;
  one_iter.max_iterations = 1;
  one_iter.enable_copyprop = false;
  one_iter.enable_dce = false;
  return {all, no_inline, scalar_mix, one_iter};
}

std::vector<std::pair<std::string, SiteOracle>> oracle_variants() {
  const SiteOracle mixed = [](bc::MethodId m, std::int32_t pc) {
    const std::uint64_t h =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pc)) * 0xbf58476d1ce4e5b9ULL);
    return SiteProfile{(h >> 17 & 1) != 0, h % 701};
  };
  return {{"cold", cold_site}, {"mixed", mixed}};
}

TEST(PassManagerEquivalence, BitIdenticalToLegacyOverWorkloads) {
  const std::vector<heur::InlineParams> params = five_param_variants();
  const std::vector<OptimizerOptions> options = option_variants();
  const auto oracles = oracle_variants();
  std::size_t i = 0;
  for (const wl::Workload& w : wl::make_suite("all")) {
    for (std::size_t pi = 0; pi < params.size(); ++pi, ++i) {
      const auto& [oracle_name, oracle] = oracles[i % oracles.size()];
      expect_identical(w.program, params[pi], oracle, options[i % options.size()],
                       w.name + "/params" + std::to_string(pi) + "/" + oracle_name);
    }
  }
}

#ifdef ITH_FUZZ_CORPUS_DIR
// Fuzz-corpus acceptance bar for the redesign: every checked-in repro —
// programs shrunk specifically to stress the optimizer — compiles
// bit-identically through the new pipeline for randomized five-parameter
// genomes. (The live fuzz campaign re-proves this continuously through the
// pipeline-diff tier; this pins the corpus in the unit suite.)
TEST(PassManagerEquivalence, BitIdenticalToLegacyOverFuzzCorpus) {
  const auto entries = fuzz::load_corpus(ITH_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(entries.empty()) << "corpus directory missing or empty";
  const std::vector<OptimizerOptions> options = option_variants();
  const auto oracles = oracle_variants();
  std::mt19937_64 rng(20260807);
  const auto& ranges = heur::param_ranges();
  std::size_t i = 0;
  for (const auto& [name, prog] : entries) {
    heur::InlineParams::Array a{};
    for (std::size_t k = 0; k < a.size(); ++k) {
      std::uniform_int_distribution<int> dist(ranges[k].lo, ranges[k].hi);
      a[k] = dist(rng);
    }
    a[5] = 0;  // five-param genome: partial inlining off
    const auto& [oracle_name, oracle] = oracles[i % oracles.size()];
    expect_identical(prog, heur::InlineParams::from_array(a), oracle, options[i % options.size()],
                     name + "/" + oracle_name);
    ++i;
  }
}
#endif

// --- Analysis cache reuse across compilations -----------------------------

TEST(PassManagerCache, SecondCompilationReusesProgramScopeAnalyses) {
  const bc::Program& prog = wl::make_workload("compress").program;
  const heur::JikesHeuristic h;
  PassManager pm(prog, h);

  pm.run(prog.entry());
  const AnalysisStats s1 = pm.analyses().stats();
  EXPECT_GT(s1.misses, 0u) << "first compilation must compute something";

  pm.run(prog.entry());
  const AnalysisStats s2 = pm.analyses().stats();
  EXPECT_GT(s2.hits, s1.hits) << "recompilation must hit the cache";

  // The call graph is program-scope: recompiling the same root re-asks for
  // its callees but must never recompute them.
  const auto cg = static_cast<unsigned>(AnalysisId::kCallGraph);
  EXPECT_GT(s2.hits_by_kind[cg], s1.hits_by_kind[cg]);
  EXPECT_EQ(s2.misses_by_kind[cg], s1.misses_by_kind[cg]);
}

TEST(PassManagerCache, AnalysisCountersReachTheObsLayer) {
  obs::MemorySink sink;
  obs::Context ctx(&sink, obs::kAllCategories);
  const bc::Program& prog = wl::make_workload("compress").program;
  const heur::JikesHeuristic h;
  PassManager pm(prog, h, cold_site, PipelineDesc::standard(), InlineLimits{}, &ctx);
  pm.run(prog.entry());
  pm.run(prog.entry());
  ctx.flush();

  std::int64_t hits = -1, misses = -1;
  for (const obs::Event& e : sink.events()) {
    if (e.phase != obs::Phase::kCounter) continue;
    for (const obs::Arg& arg : e.args) {
      if (arg.key == "opt.analysis_hits") hits = std::get<std::int64_t>(arg.value);
      if (arg.key == "opt.analysis_misses") misses = std::get<std::int64_t>(arg.value);
    }
  }
  EXPECT_GT(hits, 0) << "opt.analysis_hits counter missing or zero";
  EXPECT_GT(misses, 0) << "opt.analysis_misses counter missing or zero";
}

TEST(PassManagerStats, EmitsOneRowPerPipelinePass) {
  const bc::Program p = ith::test::make_loop_program(10);
  const heur::JikesHeuristic h;
  PassManager pm(p, h);
  const OptimizeResult r = pm.run(p.entry());

  const PipelineDesc& desc = pm.pipeline();
  ASSERT_EQ(r.pass_stats.size(), desc.setup.size() + desc.fixpoint.size());
  for (std::size_t i = 0; i < desc.setup.size(); ++i) {
    EXPECT_EQ(r.pass_stats[i].pass, desc.setup[i]);
  }
  for (std::size_t i = 0; i < desc.fixpoint.size(); ++i) {
    EXPECT_EQ(r.pass_stats[desc.setup.size() + i].pass, desc.fixpoint[i]);
  }
  // The inline pass ran exactly once and saw the original body size.
  EXPECT_EQ(r.pass_stats[0].pass, std::string("inline"));
  EXPECT_EQ(r.pass_stats[0].runs, 1u);
  EXPECT_GT(r.pass_stats[0].inst_before, 0u);
  EXPECT_NE(format_pass_stat(r.pass_stats[0]).find("[pass inline]"), std::string::npos);
}

// --- PreservedAnalyses soundness ------------------------------------------

// Property: a pass that rewrites the body but *under-reports* what it
// invalidated leaves a stale cached analysis behind, and verify mode must
// catch exactly that. Honest invalidation of the same rewrite passes.
TEST(AnalysisInvalidation, UnderReportingTripsTheStaleDetector) {
  const bc::Program p = ith::test::make_loop_program(10);
  const bc::MethodId id = p.entry();

  int mutations_checked = 0;
  AnalysisManager manager(p);
  manager.set_verify(true);
  AnnotatedMethod am = AnnotatedMethod::from_method(p.method(id), id);
  const std::vector<bc::Instruction>& code = am.method.code();
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (code[pc].op != bc::Op::kLoad) continue;
    manager.begin_body();
    manager.liveness(am);  // miss: computed and cached

    AnnotatedMethod mutated = am;
    mutated.method.mutable_code()[pc].op = bc::Op::kConst;  // load count changes
    // The "pass" claims it preserved everything — the next hit recomputes
    // under verify mode, sees a different load count, and throws.
    manager.invalidate(PreservedAnalyses::all());
    EXPECT_THROW(manager.liveness(mutated), Error) << "pc " << pc;

    // The honest report (liveness abandoned) drops the entry instead.
    manager.begin_body();
    manager.liveness(am);
    manager.invalidate(PreservedAnalyses::all().abandon(AnalysisId::kLiveness));
    EXPECT_NO_THROW(manager.liveness(mutated)) << "pc " << pc;
    ++mutations_checked;
  }
  ASSERT_GT(mutations_checked, 0) << "test program lost its loads";
}

TEST(AnalysisInvalidation, BranchRetargetingIsAlsoDetected) {
  const bc::Program p = ith::test::make_loop_program(10);
  const bc::MethodId id = p.entry();
  AnnotatedMethod am = AnnotatedMethod::from_method(p.method(id), id);

  std::size_t branch_pc = am.method.code().size();
  for (std::size_t pc = 0; pc < am.method.code().size(); ++pc) {
    const bc::Op op = am.method.code()[pc].op;
    if (op == bc::Op::kJz || op == bc::Op::kJmp) {
      branch_pc = pc;
      break;
    }
  }
  ASSERT_LT(branch_pc, am.method.code().size()) << "test program lost its branches";

  AnalysisManager manager(p);
  manager.set_verify(true);
  manager.begin_body();
  manager.branch_targets(am);

  AnnotatedMethod mutated = am;
  mutated.method.mutable_code()[branch_pc].a += 1;  // branch target moves
  manager.invalidate(PreservedAnalyses::all());
  EXPECT_THROW(manager.branch_targets(mutated), Error);

  manager.invalidate(PreservedAnalyses::none());
  EXPECT_NO_THROW(manager.branch_targets(mutated));
}

TEST(AnalysisInvalidation, BeginBodyDropsWithoutCountingInvalidations) {
  const bc::Program p = ith::test::make_loop_program(10);
  AnalysisManager manager(p);
  const AnnotatedMethod am = AnnotatedMethod::from_method(p.method(p.entry()), p.entry());
  manager.begin_body();
  manager.liveness(am);
  manager.begin_body();
  EXPECT_EQ(manager.stats().invalidations, 0u);
  manager.liveness(am);
  EXPECT_EQ(manager.stats().misses_by_kind[static_cast<unsigned>(AnalysisId::kLiveness)], 2u)
      << "begin_body must drop body-scope entries";
}

}  // namespace
}  // namespace ith::opt
