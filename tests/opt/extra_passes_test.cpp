// Tests for the extended optimizer passes: algebraic simplification,
// compare/branch fusion, and self-tail-call elimination (including its
// definite-assignment safety analysis).
#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "bytecode/verifier.hpp"
#include "heuristics/heuristic.hpp"
#include "opt/optimizer.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace ith::opt {
namespace {

using bc::Instruction;
using bc::Op;

AnnotatedMethod annotate(std::vector<Instruction> code, int num_args = 0, int num_locals = 2) {
  bc::Method m("m", num_args, num_locals);
  for (const Instruction& insn : code) m.append(insn);
  return AnnotatedMethod::from_method(m, 0);
}

// --- simplify_algebraic -------------------------------------------------------

TEST(Algebraic, AddZeroRemoved) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 0, 0}, {Op::kAdd, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(simplify_algebraic(am), 1u);
  compact_nops(am);
  ASSERT_EQ(am.method.size(), 2u);
  EXPECT_EQ(am.method.code()[0].op, Op::kLoad);
}

TEST(Algebraic, SubZeroAndMulDivOne) {
  for (const auto& [c, op] : std::vector<std::pair<int, Op>>{
           {0, Op::kSub}, {1, Op::kMul}, {1, Op::kDiv}}) {
    AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, c, 0}, {op, 0, 0},
                                   {Op::kHalt, 0, 0}});
    EXPECT_EQ(simplify_algebraic(am), 1u) << static_cast<int>(op);
  }
}

TEST(Algebraic, MulZeroBecomesPopConstZero) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 0, 0}, {Op::kMul, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(simplify_algebraic(am), 1u);
  EXPECT_EQ(am.method.code()[1].op, Op::kPop);
  EXPECT_EQ(am.method.code()[2], (Instruction{Op::kConst, 0, 0}));
}

TEST(Algebraic, ModOneIsZero) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 1, 0}, {Op::kMod, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(simplify_algebraic(am), 1u);
  EXPECT_EQ(am.method.code()[2], (Instruction{Op::kConst, 0, 0}));
}

TEST(Algebraic, AddNonZeroKept) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 5, 0}, {Op::kAdd, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(simplify_algebraic(am), 0u);
}

TEST(Algebraic, DivZeroNotTouched) {
  // x / 0 must stay (it evaluates to 0 at runtime; constant_fold handles the
  // all-constant form, not this one).
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 0, 0}, {Op::kDiv, 0, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(simplify_algebraic(am), 0u);
}

TEST(Algebraic, RespectsBranchTargets) {
  AnnotatedMethod am = annotate({
      {Op::kLoad, 0, 0},   // 0
      {Op::kJz, 3, 0},     // 1 -> targets the add (pattern unsafe)... target pc3
      {Op::kConst, 0, 0},  // 2
      {Op::kAdd, 0, 0},    // 3 <- targeted
      {Op::kHalt, 0, 0},
  });
  EXPECT_EQ(simplify_algebraic(am), 0u);
}

// --- fuse_compare_branch ------------------------------------------------------

TEST(CompareFusion, EqZeroJzBecomesJnz) {
  // x == 0 feeding jz: branch taken when x != 0.
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 0, 0}, {Op::kCmpEq, 0, 0},
                                 {Op::kJz, 5, 0}, {Op::kNop, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(fuse_compare_branch(am), 1u);
  compact_nops(am);
  EXPECT_EQ(am.method.code()[1].op, Op::kJnz);
}

TEST(CompareFusion, AllFourPolarities) {
  const struct {
    Op cmp;
    Op branch;
    Op expect;
  } cases[] = {
      {Op::kCmpEq, Op::kJz, Op::kJnz},
      {Op::kCmpEq, Op::kJnz, Op::kJz},
      {Op::kCmpNe, Op::kJz, Op::kJz},
      {Op::kCmpNe, Op::kJnz, Op::kJnz},
  };
  for (const auto& c : cases) {
    AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 0, 0}, {c.cmp, 0, 0},
                                   {c.branch, 5, 0}, {Op::kNop, 0, 0}, {Op::kHalt, 0, 0}});
    ASSERT_EQ(fuse_compare_branch(am), 1u);
    compact_nops(am);
    EXPECT_EQ(am.method.code()[1].op, c.expect);
  }
}

TEST(CompareFusion, SemanticEquivalenceOnRealProgram) {
  // abs-like: if (x == 0) 100 else 7, for x in {0, 5}.
  bc::ProgramBuilder pb("p");
  auto& f = pb.method("f", 1, 1);
  f.load(0).const_(0).cmpeq().jz("nz");
  f.ret_const(100);
  f.label("nz");
  f.ret_const(7);
  pb.method("main", 0, 0)
      .const_(0).call("f", 1)
      .const_(5).call("f", 1)
      .add().halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  ASSERT_EQ(ith::test::run_exit_value(p), 107);

  AnnotatedMethod am = AnnotatedMethod::from_method(p.method(p.find_method("f")), 1);
  EXPECT_EQ(fuse_compare_branch(am), 1u);
  compact_nops(am);
  bc::Program q = p;
  q.mutable_method(q.find_method("f")) = am.method;
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), 107);
}

TEST(CompareFusion, NegBeforeBranchDropped) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kNeg, 0, 0}, {Op::kJz, 3, 0},
                                 {Op::kHalt, 0, 0}});
  EXPECT_EQ(fuse_compare_branch(am), 1u);
  EXPECT_EQ(am.method.code()[1].op, Op::kNop);
}

TEST(CompareFusion, NonZeroConstantNotFused) {
  AnnotatedMethod am = annotate({{Op::kLoad, 0, 0}, {Op::kConst, 3, 0}, {Op::kCmpEq, 0, 0},
                                 {Op::kJz, 5, 0}, {Op::kNop, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_EQ(fuse_compare_branch(am), 0u);
}

// --- definite assignment ------------------------------------------------------

TEST(DefiniteAssignment, ArgsOnlyIsTriviallySafe) {
  bc::Method m("m", 2, 2);
  m.append({Op::kLoad, 0, 0});
  m.append({Op::kRet, 0, 0});
  EXPECT_TRUE(non_arg_locals_definitely_assigned(m));
}

TEST(DefiniteAssignment, WriteBeforeReadIsSafe) {
  bc::Method m("m", 1, 2);
  m.append({Op::kConst, 0, 0});
  m.append({Op::kStore, 1, 0});
  m.append({Op::kLoad, 1, 0});
  m.append({Op::kRet, 0, 0});
  EXPECT_TRUE(non_arg_locals_definitely_assigned(m));
}

TEST(DefiniteAssignment, ReadBeforeWriteIsUnsafe) {
  bc::Method m("m", 1, 2);
  m.append({Op::kLoad, 1, 0});  // reads the zero-initialized local
  m.append({Op::kRet, 0, 0});
  EXPECT_FALSE(non_arg_locals_definitely_assigned(m));
}

TEST(DefiniteAssignment, MustJoinIsIntersection) {
  // One branch writes local 1, the other doesn't; the read after the join
  // is unsafe.
  bc::Method m("m", 1, 2);
  m.append({Op::kLoad, 0, 0});   // 0
  m.append({Op::kJz, 4, 0});     // 1
  m.append({Op::kConst, 7, 0});  // 2
  m.append({Op::kStore, 1, 0});  // 3
  m.append({Op::kLoad, 1, 0});   // 4 <- join: only one path assigned
  m.append({Op::kRet, 0, 0});    // 5
  EXPECT_FALSE(non_arg_locals_definitely_assigned(m));
}

// --- tail-recursion elimination -------------------------------------------------

// count(n) = n <= 0 ? 0 : count(n-1)  — a pure self tail call.
bc::Program tail_count_program(std::int64_t n) {
  bc::ProgramBuilder pb("tail");
  auto& f = pb.method("count", 1, 1);
  f.load(0).const_(1).cmplt().jz("rec");
  f.ret_const(0);
  f.label("rec");
  f.load(0).const_(1).sub();
  f.call("count", 1);
  f.ret();
  pb.method("main", 0, 0).const_(n).call("count", 1).halt();
  pb.entry("main");
  return pb.build();
}

TEST(TailRecursion, EliminatesSelfTailCall) {
  const bc::Program p = tail_count_program(10);
  AnnotatedMethod am = AnnotatedMethod::from_method(p.method(p.find_method("count")),
                                                    p.find_method("count"));
  EXPECT_EQ(eliminate_tail_recursion(am, p.find_method("count"), 1), 1u);
  EXPECT_TRUE(am.method.call_sites().empty());
  bc::Program q = p;
  q.mutable_method(q.find_method("count")) = am.method;
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), 0);
}

TEST(TailRecursion, TurnsDeepRecursionIntoConstantStack) {
  // Without elimination, count(3000) overflows a 64-frame stack; with it,
  // the loop runs in one frame.
  const bc::Program p = tail_count_program(3000);
  const rt::MachineModel machine = rt::pentium4_model();
  rt::InterpreterOptions opts;
  opts.max_frames = 64;
  {
    ith::test::IdentitySource source(p);
    rt::Interpreter interp(p, machine, source, nullptr, opts);
    EXPECT_THROW(interp.run(), Error);
  }
  AnnotatedMethod am = AnnotatedMethod::from_method(p.method(p.find_method("count")),
                                                    p.find_method("count"));
  ASSERT_EQ(eliminate_tail_recursion(am, p.find_method("count"), 1), 1u);
  bc::Program q = p;
  q.mutable_method(q.find_method("count")) = am.method;
  ith::test::IdentitySource source(q);
  rt::Interpreter interp(q, machine, source, nullptr, opts);
  const rt::ExecStats r = interp.run();
  EXPECT_EQ(r.exit_value, 0);
  EXPECT_LE(r.max_frame_depth, 3u);
}

TEST(TailRecursion, NonTailCallUntouched) {
  // fib's recursive calls feed an add: not tail position.
  const bc::Program p = ith::test::make_fib_program(8);
  AnnotatedMethod am = AnnotatedMethod::from_method(p.method(p.find_method("fib")),
                                                    p.find_method("fib"));
  EXPECT_EQ(eliminate_tail_recursion(am, p.find_method("fib"), 1), 0u);
}

TEST(TailRecursion, RefusedWhenNonArgLocalLeaks) {
  // g(n): if (n < 1) return t; t = 7; return g(n-1);
  // Reuses the frame -> t would persist across logical activations; the
  // definite-assignment guard must refuse.
  bc::ProgramBuilder pb("leak");
  auto& g = pb.method("g", 1, 2);
  g.load(0).const_(1).cmplt().jz("rec");
  g.load(1).ret();  // reads t (zero-initialized on a fresh frame)
  g.label("rec");
  g.const_(7).store(1);
  g.load(0).const_(1).sub().call("g", 1).ret();
  pb.method("main", 0, 0).const_(3).call("g", 1).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  EXPECT_EQ(ith::test::run_exit_value(p), 0) << "fresh frames: t is 0 at the base case";

  AnnotatedMethod am =
      AnnotatedMethod::from_method(p.method(p.find_method("g")), p.find_method("g"));
  EXPECT_EQ(eliminate_tail_recursion(am, p.find_method("g"), 1), 0u)
      << "rewriting would make the base case return 7";
}

TEST(TailRecursion, MultiArgumentOrderPreserved) {
  // sum(n, acc) = n <= 0 ? acc : sum(n-1, acc+n)
  bc::ProgramBuilder pb("sum");
  auto& f = pb.method("sum", 2, 2);
  f.load(0).const_(1).cmplt().jz("rec");
  f.load(1).ret();
  f.label("rec");
  f.load(0).const_(1).sub();   // new n
  f.load(1).load(0).add();     // new acc
  f.call("sum", 2);
  f.ret();
  pb.method("main", 0, 0).const_(100).const_(0).call("sum", 2).halt();
  pb.entry("main");
  const bc::Program p = pb.build();
  ASSERT_EQ(ith::test::run_exit_value(p), 5050);

  AnnotatedMethod am =
      AnnotatedMethod::from_method(p.method(p.find_method("sum")), p.find_method("sum"));
  ASSERT_EQ(eliminate_tail_recursion(am, p.find_method("sum"), 2), 1u);
  bc::Program q = p;
  q.mutable_method(q.find_method("sum")) = am.method;
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), 5050);
}

TEST(TailRecursion, ViaOptimizerPipeline) {
  const bc::Program p = tail_count_program(50);
  heur::NeverInlineHeuristic h;
  const Optimizer optimizer(p, h);
  const OptimizeResult r = optimizer.optimize(p.find_method("count"));
  EXPECT_EQ(r.stats.tail_calls_eliminated, 1u);
  bc::Program q = p;
  q.mutable_method(q.find_method("count")) = r.body.method;
  bc::verify_program(q);
  EXPECT_EQ(ith::test::run_exit_value(q), ith::test::run_exit_value(p));
}

TEST(TailRecursion, DisabledByOption) {
  const bc::Program p = tail_count_program(50);
  heur::NeverInlineHeuristic h;
  OptimizerOptions opts;
  opts.enable_tail_recursion = false;
  const Optimizer optimizer(p, h, cold_site, opts);
  EXPECT_EQ(optimizer.optimize(p.find_method("count")).stats.tail_calls_eliminated, 0u);
}

}  // namespace
}  // namespace ith::opt
