// DecisionProbe equivalence: the probe's predicted decision trace must match
// the real Inliner's traced decisions bit for bit — same consultations, same
// order, same sizes/depths/rules — across workloads, hand-written edge
// cases, generated adversarial programs, oracles and limit variants. Plus
// unit coverage for the decision signature built on top of the replay.
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "bytecode/size_estimator.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "opt/decision_probe.hpp"
#include "opt/inliner.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

std::int64_t arg_int(const obs::Event& e, const std::string& key) {
  for (const obs::Arg& a : e.args) {
    if (a.key == key) return std::get<std::int64_t>(a.value);
  }
  ADD_FAILURE() << "missing int arg " << key;
  return -1;
}

std::string arg_str(const obs::Event& e, const std::string& key) {
  for (const obs::Arg& a : e.args) {
    if (a.key == key) return std::get<std::string>(a.value);
  }
  ADD_FAILURE() << "missing string arg " << key;
  return "";
}

/// Runs the real Inliner with decision tracing on and the probe side by
/// side over every method of `prog`, and requires identical traces + stats.
void expect_probe_matches_inliner(const bc::Program& prog, const heur::InlineParams& params,
                                  const opt::SiteOracle& oracle, opt::InlineLimits limits,
                                  const std::string& label) {
  const heur::JikesHeuristic heuristic(params);
  const opt::DecisionProbe probe(prog, heuristic, oracle, limits);

  for (bc::MethodId id = 0; id < static_cast<bc::MethodId>(prog.num_methods()); ++id) {
    obs::MemorySink sink;
    obs::Context ctx(&sink, static_cast<std::uint32_t>(obs::Category::kInline));
    const opt::Inliner inliner(prog, heuristic, oracle, limits, &ctx);

    opt::InlineStats real_stats;
    const opt::AnnotatedMethod am = inliner.run(id, &real_stats);
    opt::InlineStats probe_stats;
    const std::vector<opt::ProbeDecision> predicted = probe.probe_method(id, &probe_stats);

    const std::vector<obs::Event> events = sink.events();
    ASSERT_EQ(predicted.size(), events.size())
        << label << ": method " << prog.method(id).name() << " consultation count";
    for (std::size_t i = 0; i < events.size(); ++i) {
      const obs::Event& e = events[i];
      const opt::ProbeDecision& p = predicted[i];
      SCOPED_TRACE(label + ": method " + prog.method(id).name() + " consultation #" +
                   std::to_string(i));
      EXPECT_EQ(e.name, std::string("inline.decision"));
      EXPECT_EQ(arg_str(e, "caller"), prog.method(p.root).name());
      EXPECT_EQ(arg_str(e, "callee"), prog.method(p.callee).name());
      EXPECT_EQ(arg_str(e, "rule"), std::string(p.rule));
      EXPECT_EQ(arg_int(e, "inlined"), p.inlined ? 1 : 0);
      EXPECT_EQ(arg_int(e, "depth"), p.depth);
      EXPECT_EQ(arg_int(e, "callee_size"), p.callee_size);
      EXPECT_EQ(arg_int(e, "caller_size"), p.caller_size);
      EXPECT_EQ(arg_int(e, "hot"), p.is_hot ? 1 : 0);
      EXPECT_EQ(arg_int(e, "site_count"), static_cast<std::int64_t>(p.site_count));
      EXPECT_EQ(arg_int(e, "partial"), p.partial ? 1 : 0);
    }

    EXPECT_EQ(probe_stats.sites_considered, real_stats.sites_considered) << label;
    EXPECT_EQ(probe_stats.sites_inlined, real_stats.sites_inlined) << label;
    EXPECT_EQ(probe_stats.sites_partially_inlined, real_stats.sites_partially_inlined) << label;
    EXPECT_EQ(probe_stats.sites_refused_by_heuristic, real_stats.sites_refused_by_heuristic)
        << label;
    EXPECT_EQ(probe_stats.sites_refused_structural, real_stats.sites_refused_structural) << label;
    EXPECT_EQ(probe_stats.max_depth_reached, real_stats.max_depth_reached) << label;
    EXPECT_EQ(probe_stats.size_before_words, real_stats.size_before_words) << label;
    EXPECT_EQ(probe_stats.size_after_words, real_stats.size_after_words) << label;
    // The probe's virtual size accounting must agree with the real estimate
    // of the actually-spliced body, not just with the stats struct.
    EXPECT_EQ(probe_stats.size_after_words, bc::estimated_method_size(am.method)) << label;
  }
}

std::vector<heur::InlineParams> param_variants() {
  std::vector<heur::InlineParams> out;
  out.push_back(heur::default_params());

  heur::InlineParams aggressive;
  aggressive.callee_max_size = 500;
  aggressive.always_inline_size = 200;
  aggressive.max_inline_depth = 12;
  aggressive.caller_max_size = 100000;
  aggressive.hot_callee_max_size = 500;
  out.push_back(aggressive);

  heur::InlineParams stingy;
  stingy.callee_max_size = 1;
  stingy.always_inline_size = 0;
  stingy.max_inline_depth = 0;
  stingy.caller_max_size = 1;
  stingy.hot_callee_max_size = 1;
  out.push_back(stingy);

  // Partial inlining armed with a generous head budget: too-big callees
  // with guard heads now take the kPartial verdict path everywhere.
  heur::InlineParams partial_friendly = heur::default_params();
  partial_friendly.partial_max_head_size = 40;
  out.push_back(partial_friendly);

  std::mt19937_64 rng(20260806);
  const auto& ranges = heur::param_ranges();
  for (int i = 0; i < 4; ++i) {
    heur::InlineParams::Array a{};
    for (std::size_t k = 0; k < a.size(); ++k) {
      std::uniform_int_distribution<int> dist(ranges[k].lo, ranges[k].hi);
      a[k] = dist(rng);
    }
    out.push_back(heur::InlineParams::from_array(a));
  }
  return out;
}

std::vector<std::pair<std::string, opt::SiteOracle>> oracle_variants() {
  const opt::SiteOracle all_hot = [](bc::MethodId, std::int32_t) {
    return opt::SiteProfile{true, 5000};
  };
  // Deterministic mixed labelling: hot/cold depends on the origin site, the
  // way a real mid-run profile snapshot would.
  const opt::SiteOracle mixed = [](bc::MethodId m, std::int32_t pc) {
    const std::uint64_t h =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pc)) * 0xbf58476d1ce4e5b9ULL);
    return opt::SiteProfile{(h >> 17 & 1) != 0, h % 701};
  };
  return {{"cold", opt::cold_site}, {"all_hot", all_hot}, {"mixed", mixed}};
}

TEST(DecisionProbe, MatchesInlinerOverWorkloads) {
  const std::vector<heur::InlineParams> params = param_variants();
  const auto oracles = oracle_variants();
  for (const wl::Workload& w : wl::make_suite("all")) {
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      const auto& [oracle_name, oracle] = oracles[pi % oracles.size()];
      expect_probe_matches_inliner(w.program, params[pi], oracle, opt::InlineLimits{},
                                   w.name + "/params" + std::to_string(pi) + "/" + oracle_name);
    }
  }
}

TEST(DecisionProbe, MatchesInlinerOverEdgeCasesAndLimits) {
  const std::vector<opt::InlineLimits> limit_variants = {
      opt::InlineLimits{},
      opt::InlineLimits{.hard_depth_cap = 2, .max_recursive_occurrences = 1, .max_body_words = 300},
      opt::InlineLimits{.hard_depth_cap = 20, .max_recursive_occurrences = 3,
                        .max_body_words = 20000},
  };
  const auto oracles = oracle_variants();
  for (const auto& [name, prog] : fuzz::builtin_edge_cases()) {
    for (std::size_t li = 0; li < limit_variants.size(); ++li) {
      const auto& [oracle_name, oracle] = oracles[li % oracles.size()];
      expect_probe_matches_inliner(prog, heur::default_params(), oracle, limit_variants[li],
                                   name + "/limits" + std::to_string(li) + "/" + oracle_name);
    }
  }
}

TEST(DecisionProbe, MatchesInlinerOverGeneratedPrograms) {
  const std::vector<heur::InlineParams> params = param_variants();
  const auto oracles = oracle_variants();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    fuzz::GeneratorSpec spec;
    spec.seed = seed;
    const bc::Program prog = fuzz::generate_adversarial(spec);
    const heur::InlineParams& p = params[seed % params.size()];
    const auto& [oracle_name, oracle] = oracles[seed % oracles.size()];
    expect_probe_matches_inliner(prog, p, oracle, opt::InlineLimits{},
                                 "gen" + std::to_string(seed) + "/" + oracle_name);
  }
}

#ifdef ITH_FUZZ_CORPUS_DIR
// The acceptance bar for the probe: every checked-in fuzz-corpus repro —
// programs specifically shrunk to stress the optimizer — replays bit for
// bit. A corpus entry the probe mispredicts would poison the signature
// cache for exactly the programs most likely to expose it.
TEST(DecisionProbe, MatchesInlinerOverFuzzCorpus) {
  const auto entries = fuzz::load_corpus(ITH_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(entries.empty()) << "corpus directory missing or empty";
  const std::vector<heur::InlineParams> params = param_variants();
  const auto oracles = oracle_variants();
  std::size_t i = 0;
  for (const auto& [name, prog] : entries) {
    for (std::size_t pi = 0; pi < params.size(); ++pi, ++i) {
      const auto& [oracle_name, oracle] = oracles[i % oracles.size()];
      expect_probe_matches_inliner(prog, params[pi], oracle, opt::InlineLimits{},
                                   name + "/params" + std::to_string(pi) + "/" + oracle_name);
    }
  }
}
#endif

// --- Partial inlining -------------------------------------------------------

// guard(n): pure six-instruction head, fat accumulation tail — the shape
// partial inlining targets (same fixture as partial_inline_test.cpp). main
// calls it twice so the probe must replay the splice, the residual stub
// consultation and the structural refusal of the re-expanded stub.
bc::Program make_guard_program() {
  bc::ProgramBuilder pb("partial", 0);
  auto& g = pb.method("guard", 1, 2);
  g.load(0).const_(10).cmplt().jz("tail");
  g.const_(0).ret();
  g.label("tail");
  g.load(0).store(1);
  for (int i = 1; i <= 9; ++i) {
    g.load(1).const_(i).add().store(1);
  }
  g.load(1).ret();

  auto& m = pb.method("main", 0, 0);
  m.const_(3).call("guard", 1);
  m.const_(50).call("guard", 1);
  m.add().halt();
  pb.entry("main");
  return pb.build();
}

TEST(DecisionProbe, MatchesInlinerOverPartialSplices) {
  const bc::Program prog = make_guard_program();
  const std::vector<opt::InlineLimits> limit_variants = {
      opt::InlineLimits{},
      // A looser recursion allowance lets the residual stub be consulted
      // (and partially expanded) again instead of refused structurally.
      opt::InlineLimits{.hard_depth_cap = 20, .max_recursive_occurrences = 3,
                        .max_body_words = 20000},
  };
  const auto oracles = oracle_variants();
  for (int head = 0; head <= 40; head += 8) {
    heur::InlineParams p = heur::default_params();
    p.partial_max_head_size = head;
    for (std::size_t li = 0; li < limit_variants.size(); ++li) {
      const auto& [oracle_name, oracle] = oracles[(head / 8 + li) % oracles.size()];
      expect_probe_matches_inliner(prog, p, oracle, limit_variants[li],
                                   "partial_head" + std::to_string(head) + "/limits" +
                                       std::to_string(li) + "/" + oracle_name);
    }
  }
}

// --- Decision signature ----------------------------------------------------

bc::Program two_method_program() {
  bc::Program prog("sigtest", 4);
  bc::Method leaf("leaf", 1, 1);
  leaf.append({bc::Op::kLoad, 0, 0});
  leaf.append({bc::Op::kConst, 2, 0});
  leaf.append({bc::Op::kMul, 0, 0});
  leaf.append({bc::Op::kRet, 0, 0});
  const bc::MethodId leaf_id = prog.add_method(leaf);

  bc::Method entry("entry", 0, 1);
  entry.append({bc::Op::kConst, 21, 0});
  entry.append({bc::Op::kCall, leaf_id, 1});
  entry.append({bc::Op::kStore, 0, 0});
  entry.append({bc::Op::kConst, 0, 0});
  entry.append({bc::Op::kHalt, 0, 0});
  prog.set_entry(prog.add_method(entry));
  return prog;
}

TEST(DecisionSignature, DeterministicAndParamSensitive) {
  const bc::Program prog = two_method_program();
  const heur::InlineParams p = heur::default_params();
  const opt::SignatureResult a = opt::decision_signature(prog, p, opt::InlineLimits{});
  const opt::SignatureResult b = opt::decision_signature(prog, p, opt::InlineLimits{});
  EXPECT_TRUE(a.exact);
  EXPECT_EQ(a.value, b.value);
  EXPECT_GT(a.consultations, 0u);

  heur::InlineParams never = p;
  never.callee_max_size = 1;
  never.always_inline_size = 0;
  const opt::SignatureResult c = opt::decision_signature(prog, never, opt::InlineLimits{});
  EXPECT_NE(a.value, c.value);
}

TEST(DecisionSignature, ColdReplayIgnoresHotParameter) {
  const bc::Program prog = two_method_program();
  heur::InlineParams p1 = heur::default_params();
  heur::InlineParams p2 = p1;
  p2.hot_callee_max_size = p1.hot_callee_max_size + 40;

  opt::SignatureOptions opts;
  opts.adaptive = false;
  const auto s1 = opt::decision_signature(prog, p1, opt::InlineLimits{}, opts);
  const auto s2 = opt::decision_signature(prog, p2, opt::InlineLimits{}, opts);
  EXPECT_EQ(s1.value, s2.value);
  EXPECT_EQ(s1.forks, 0u);  // non-adaptive never forks
}

TEST(DecisionSignature, AdaptiveForksWhenHotAndColdVerdictsDiverge) {
  const bc::Program prog = two_method_program();
  const int leaf_size = bc::estimated_method_size(prog.method(prog.find_method("leaf")));

  // Figure 3 says yes (callee under both thresholds), Figure 4 says no
  // (callee over the hot ceiling): the labelling of the site matters, so
  // the adaptive exploration must fork and the hot parameter must show up
  // in the signature.
  heur::InlineParams p;
  p.callee_max_size = leaf_size + 10;
  p.always_inline_size = leaf_size + 5;
  p.max_inline_depth = 5;
  p.caller_max_size = 2048;
  p.hot_callee_max_size = leaf_size - 1;

  const auto s = opt::decision_signature(prog, p, opt::InlineLimits{});
  EXPECT_GT(s.forks, 0u);

  heur::InlineParams hot_friendly = p;
  hot_friendly.hot_callee_max_size = leaf_size + 10;  // fig4 now agrees with fig3
  const auto s2 = opt::decision_signature(prog, hot_friendly, opt::InlineLimits{});
  EXPECT_EQ(s2.forks, 0u);
  EXPECT_NE(s.value, s2.value);
}

TEST(DecisionSignature, BudgetOverflowFallsBackToRawParams) {
  const bc::Program prog = two_method_program();
  opt::SignatureOptions opts;
  opts.max_events = 0;  // the very first consultation overflows

  heur::InlineParams p1 = heur::default_params();
  heur::InlineParams p2 = p1;
  p2.callee_max_size += 1;

  const auto s1 = opt::decision_signature(prog, p1, opt::InlineLimits{}, opts);
  const auto s1_again = opt::decision_signature(prog, p1, opt::InlineLimits{}, opts);
  const auto s2 = opt::decision_signature(prog, p2, opt::InlineLimits{}, opts);
  EXPECT_FALSE(s1.exact);
  EXPECT_EQ(s1.value, s1_again.value);
  EXPECT_NE(s1.value, s2.value);  // raw-params fallback never aliases
}

TEST(DecisionSignature, PartialParameterIgnoredWithoutAnOpportunity) {
  // No callee of this program is both too big and guard-headed, so the
  // sixth parameter can never change a verdict — and therefore must never
  // change the signature (the partial=0 byte stream is the legacy one).
  const bc::Program prog = two_method_program();
  heur::InlineParams p1 = heur::default_params();
  heur::InlineParams p2 = p1;
  p2.partial_max_head_size = 40;
  const auto s1 = opt::decision_signature(prog, p1, opt::InlineLimits{});
  const auto s2 = opt::decision_signature(prog, p2, opt::InlineLimits{});
  EXPECT_TRUE(s1.exact);
  EXPECT_EQ(s1.value, s2.value);
}

TEST(DecisionSignature, PartialParameterSeparatesSignaturesWhenEligible) {
  const bc::Program prog = make_guard_program();
  heur::InlineParams p1 = heur::default_params();
  heur::InlineParams p2 = p1;
  p2.partial_max_head_size = 40;
  const auto s1 = opt::decision_signature(prog, p1, opt::InlineLimits{});
  const auto s2 = opt::decision_signature(prog, p2, opt::InlineLimits{});
  ASSERT_TRUE(s1.exact);
  ASSERT_TRUE(s2.exact);
  EXPECT_NE(s1.value, s2.value) << "a partial verdict must reach the hash";

  // And the partial exploration stays deterministic.
  const auto s2_again = opt::decision_signature(prog, p2, opt::InlineLimits{});
  EXPECT_EQ(s2.value, s2_again.value);
}

TEST(DecisionSignature, EqualSignaturesImplyIdenticalOptimizedCode) {
  // Scan a band of neighbouring callee_max_size values over a real
  // workload; whenever two land on the same exact signature, the optimizer
  // must emit identical code for every method under any per-site labelling.
  const bc::Program& prog = wl::make_workload("compress").program;
  const auto oracles = oracle_variants();

  // The default event budget favours probe speed; this test wants the
  // exhaustive exploration, so give it room (aggressive callee ceilings on
  // compress fork past the default).
  opt::SignatureOptions opts;
  opts.max_events = std::size_t{1} << 18;

  std::map<std::uint64_t, heur::InlineParams> by_sig;
  std::size_t aliased_pairs = 0;
  for (int c = 10; c <= 40; ++c) {
    heur::InlineParams p = heur::default_params();
    p.callee_max_size = c;
    const auto s = opt::decision_signature(prog, p, opt::InlineLimits{}, opts);
    ASSERT_TRUE(s.exact);
    const auto [it, fresh] = by_sig.emplace(s.value, p);
    if (fresh) continue;
    ++aliased_pairs;
    const heur::JikesHeuristic h1(it->second);
    const heur::JikesHeuristic h2(p);
    for (const auto& [oracle_name, oracle] : oracles) {
      const opt::Inliner i1(prog, h1, oracle);
      const opt::Inliner i2(prog, h2, oracle);
      for (bc::MethodId id = 0; id < static_cast<bc::MethodId>(prog.num_methods()); ++id) {
        EXPECT_EQ(i1.run(id).method, i2.run(id).method)
            << "aliased params diverged: method " << prog.method(id).name() << " oracle "
            << oracle_name << " callee_max " << it->second.callee_max_size << " vs "
            << p.callee_max_size;
      }
    }
  }
  // The band is wider than the number of distinct callee sizes it straddles,
  // so collapse must actually occur for this test to mean anything.
  EXPECT_GT(aliased_pairs, 0u);
}

}  // namespace
}  // namespace ith
