// run_fleet end-to-end: the two fleet-level claims (bit-identical winners,
// strictly fewer real evaluations) on a small suite, plus the chaos
// kill+restart leg and a heterogeneous (seed-stride) fleet. These are the
// in-process versions of what the CI fleet job asserts via tools/fleet_tune.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/context.hpp"
#include "resilience/fault.hpp"
#include "service/fleet.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    socket_ = ::testing::TempDir() + "fleet_" + info->name() + ".sock";
    snapshot_ = ::testing::TempDir() + "fleet_" + info->name() + ".evc";
    std::remove(socket_.c_str());
    std::remove(snapshot_.c_str());
  }
  void TearDown() override {
    std::remove(socket_.c_str());
    std::remove(snapshot_.c_str());
    std::remove((snapshot_ + ".tmp").c_str());
  }

  svc::FleetConfig fleet_config() const {
    svc::FleetConfig fc;
    fc.suite = {wl::make_workload("compress")};
    fc.eval.iterations = 1;
    fc.clients = 2;
    fc.generations = 2;
    fc.population = 4;
    fc.socket_path = socket_;
    return fc;
  }

  std::string socket_;
  std::string snapshot_;
};

TEST_F(FleetTest, SharesEvaluationsAndMatchesSolo) {
  svc::FleetConfig fc = fleet_config();
  fc.verify_solo = true;
  obs::Context ctx(nullptr);
  fc.obs = &ctx;

  const svc::FleetReport report = svc::run_fleet(fc);

  EXPECT_TRUE(report.winners_match);
  EXPECT_LT(report.fleet_real_evaluations, report.solo_real_evaluations)
      << "sharing the repository must make the fleet strictly cheaper";
  EXPECT_TRUE(report.leases_balanced);
  EXPECT_EQ(report.daemon_instances, 1u);
  EXPECT_GT(report.federated_entries, 0u);
  for (const svc::FleetClientReport& c : report.clients) {
    EXPECT_FALSE(c.fatally_degraded);
    EXPECT_EQ(c.pending_unflushed, 0u);
    EXPECT_EQ(c.winner, report.clients.front().winner);  // stride 0: one campaign
  }
  // The shared obs context accumulated the fleet's svc.* counters.
  EXPECT_GT(ctx.counter("svc.leases_published").value(), 0u);
}

TEST_F(FleetTest, ChaosKillRestartConvergesWithBalancedLedger) {
  svc::FleetConfig fc = fleet_config();
  fc.generations = 3;
  fc.snapshot_path = snapshot_;
  fc.snapshot_every = 1;
  fc.kill_daemon_at = 0;  // kill after client 0's first generation
  fc.service_faults.rate = 0.1;
  fc.service_faults.seed = 99;
  fc.service_faults.sites = resilience::FaultPlan::service_sites();
  fc.verify_solo = true;

  const svc::FleetReport report = svc::run_fleet(fc);

  EXPECT_EQ(report.daemon_instances, 2u);  // the chaos restart happened
  EXPECT_TRUE(report.leases_balanced)
      << "granted=" << report.daemon.leases_granted
      << " published=" << report.daemon.leases_published
      << " reclaimed=" << report.daemon.leases_reclaimed
      << " outstanding=" << report.daemon.leases_outstanding;
  EXPECT_TRUE(report.winners_match)
      << "daemon chaos may cost duplicate evaluations, never a different winner";
  for (const svc::FleetClientReport& c : report.clients) {
    EXPECT_FALSE(c.fatally_degraded);
    EXPECT_EQ(c.pending_unflushed, 0u) << "re-federation sweep left queued publishes";
  }
}

TEST_F(FleetTest, HeterogeneousStrideFleetStaysBalanced) {
  svc::FleetConfig fc = fleet_config();
  fc.seed_stride = 1;  // distinct campaigns; sharing only on collisions
  const svc::FleetReport report = svc::run_fleet(fc);
  EXPECT_TRUE(report.leases_balanced);
  EXPECT_EQ(report.clients.size(), 2u);
  for (const svc::FleetClientReport& c : report.clients) {
    EXPECT_GT(c.ga_evaluations, 0u);
    EXPECT_FALSE(c.fatally_degraded);
  }
}

}  // namespace
}  // namespace ith
