// EvalDaemon + ServiceClient: lease lifecycle (grant, publish, reclaim,
// re-dispatch), cross-process single-flight parking, the client degradation
// ladder, quarantine over the wire, federation, crash-safe persistence, and
// lease accounting under injected chaos. Every test asserts the one
// invariant the whole service hangs on:
//
//   leases_granted == leases_published + leases_reclaimed + leases_outstanding
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "tuner/eval_cache.hpp"

namespace ith {
namespace {

constexpr std::uint64_t kFingerprint = 0xabcdef0123456789ULL;

std::vector<tuner::BenchmarkResult> ok_results(std::uint64_t salt) {
  tuner::BenchmarkResult br;
  br.name = "compress";
  br.running_cycles = 1000 + salt;
  br.total_cycles = 1500 + salt;
  br.compile_cycles = 500;
  return {br};
}

std::vector<tuner::BenchmarkResult> failed_results() {
  tuner::BenchmarkResult br;
  br.name = "compress";
  br.outcome = resilience::EvalOutcome::make_trap(resilience::TrapKind::kInjected, "boom");
  br.attempts = 0;
  return {br};
}

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    socket_ = ::testing::TempDir() + "svc_" + info->name() + ".sock";
    snapshot_ = ::testing::TempDir() + "svc_" + info->name() + ".evc";
    std::remove(socket_.c_str());
    std::remove(snapshot_.c_str());
  }
  void TearDown() override {
    std::remove(socket_.c_str());
    std::remove(snapshot_.c_str());
    std::remove((snapshot_ + ".tmp").c_str());
    std::remove((snapshot_ + ".corrupt").c_str());
  }

  svc::DaemonConfig daemon_config() const {
    svc::DaemonConfig dc;
    dc.socket_path = socket_;
    dc.fingerprint = kFingerprint;
    return dc;
  }

  svc::ClientConfig client_config() const {
    svc::ClientConfig cc;
    cc.socket_path = socket_;
    cc.fingerprint = kFingerprint;
    cc.client_id = 1;
    cc.name = "test-client";
    return cc;
  }

  std::string socket_;
  std::string snapshot_;
};

TEST_F(DaemonTest, MissLeasePublishHit) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ServiceClient client(client_config());

  std::uint64_t lease = 0;
  EXPECT_FALSE(client.acquire(42, &lease).has_value());
  EXPECT_NE(lease, 0u);

  client.publish(42, lease, ok_results(0));

  std::uint64_t lease2 = 0;
  const auto hit = client.acquire(42, &lease2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(lease2, 0u);
  EXPECT_EQ(hit->at(0).running_cycles, 1000u);

  daemon.stop();
  const svc::DaemonStats s = daemon.stats();
  EXPECT_EQ(s.leases_granted, 1u);
  EXPECT_EQ(s.leases_published, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_TRUE(s.leases_balanced());
}

TEST_F(DaemonTest, PublishedResultsAreBitIdenticalOverTheWire) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ServiceClient client(client_config());

  const std::vector<tuner::BenchmarkResult> original = ok_results(7);
  std::uint64_t lease = 0;
  client.acquire(7, &lease);
  client.publish(7, lease, original);
  const auto served = client.acquire(7, &lease);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(tuner::encode_results(*served), tuner::encode_results(original));
  daemon.stop();
}

TEST_F(DaemonTest, FingerprintMismatchIsFatal) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ClientConfig cc = client_config();
  cc.fingerprint = kFingerprint ^ 1;  // different configuration
  svc::ServiceClient client(cc);

  std::uint64_t lease = ~0ull;
  EXPECT_FALSE(client.acquire(42, &lease).has_value());
  EXPECT_EQ(lease, 0u);  // lease 0 = degraded, compute locally
  EXPECT_TRUE(client.fatally_degraded());

  // Fatal is permanent: no further connection attempts, still local-only.
  EXPECT_FALSE(client.acquire(43, &lease).has_value());
  EXPECT_EQ(lease, 0u);

  daemon.stop();
  EXPECT_EQ(daemon.stats().hello_rejects, 1u);
  EXPECT_EQ(daemon.stats().leases_granted, 0u);
}

TEST_F(DaemonTest, SingleFlightParksSecondClient) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ServiceClient holder(client_config());

  std::uint64_t lease = 0;
  ASSERT_FALSE(holder.acquire(42, &lease).has_value());
  ASSERT_NE(lease, 0u);

  // A second client asking for the same signature must park server-side
  // (not get a second lease) until the holder publishes.
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    svc::ClientConfig cc = client_config();
    cc.client_id = 2;
    svc::ServiceClient second(cc);
    std::uint64_t l = 0;
    const auto r = second.acquire(42, &l);
    got.store(r.has_value() && r->at(0).running_cycles == 1000);
  });

  // Wait until the daemon has actually parked the waiter, then publish.
  while (daemon.stats().waits == 0) std::this_thread::yield();
  EXPECT_EQ(daemon.stats().leases_granted, 1u);
  holder.publish(42, lease, ok_results(0));
  waiter.join();
  EXPECT_TRUE(got.load());

  daemon.stop();
  const svc::DaemonStats s = daemon.stats();
  EXPECT_EQ(s.waits, 1u);
  EXPECT_EQ(s.leases_granted, 1u);  // single-flight: one lease, not two
  EXPECT_EQ(s.hits, 1u);            // the waiter was answered from the repo
  EXPECT_TRUE(s.leases_balanced());
}

TEST_F(DaemonTest, LeaseReclaimedOnDisconnectAndRedispatched) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();

  // Holder takes the lease, then dies without publishing.
  {
    svc::ServiceClient holder(client_config());
    std::uint64_t lease = 0;
    ASSERT_FALSE(holder.acquire(42, &lease).has_value());
    ASSERT_NE(lease, 0u);
  }  // destructor closes the connection -> reclaim

  while (daemon.stats().leases_reclaimed == 0) std::this_thread::yield();

  // The next asker gets a *fresh* lease — the signature is not stuck
  // in-flight behind a dead client.
  svc::ClientConfig cc = client_config();
  cc.client_id = 2;
  svc::ServiceClient second(cc);
  std::uint64_t lease2 = 0;
  EXPECT_FALSE(second.acquire(42, &lease2).has_value());
  EXPECT_NE(lease2, 0u);
  second.publish(42, lease2, ok_results(0));

  daemon.stop();
  const svc::DaemonStats s = daemon.stats();
  EXPECT_EQ(s.leases_granted, 2u);
  EXPECT_EQ(s.leases_reclaimed, 1u);
  EXPECT_EQ(s.leases_published, 1u);
  EXPECT_EQ(s.leases_outstanding, 0u);
  EXPECT_TRUE(s.leases_balanced());
}

TEST_F(DaemonTest, ParkedWaiterClaimsFreshLeaseWhenHolderDies) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();

  auto holder = std::make_unique<svc::ServiceClient>(client_config());
  std::uint64_t lease = 0;
  ASSERT_FALSE(holder->acquire(42, &lease).has_value());

  // Park a waiter, then kill the holder: the waiter must be woken and
  // granted its own lease (re-dispatch), not starve.
  std::atomic<std::uint64_t> waiter_lease{~0ull};
  std::thread waiter([&] {
    svc::ClientConfig cc = client_config();
    cc.client_id = 2;
    svc::ServiceClient second(cc);
    std::uint64_t l = 0;
    EXPECT_FALSE(second.acquire(42, &l).has_value());
    waiter_lease.store(l);
    second.publish(42, l, ok_results(0));
  });
  while (daemon.stats().waits == 0) std::this_thread::yield();

  holder.reset();  // disconnect: reclaim fires, waiter wakes
  waiter.join();
  EXPECT_NE(waiter_lease.load(), 0u);
  EXPECT_NE(waiter_lease.load(), ~0ull);

  daemon.stop();
  const svc::DaemonStats s = daemon.stats();
  EXPECT_EQ(s.leases_granted, 2u);
  EXPECT_EQ(s.leases_reclaimed, 1u);
  EXPECT_EQ(s.leases_published, 1u);
  EXPECT_TRUE(s.leases_balanced());
}

TEST_F(DaemonTest, PublishUnderReclaimedLeaseIsUnsolicitedButAdmitted) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ServiceClient client(client_config());

  // Publish with lease 0 (the degraded-then-reattached path): admitted,
  // counted unsolicited, completes no lease.
  client.publish(42, 0, ok_results(0));
  std::uint64_t lease = 0;
  const auto hit = client.acquire(42, &lease);
  ASSERT_TRUE(hit.has_value());

  daemon.stop();
  const svc::DaemonStats s = daemon.stats();
  EXPECT_EQ(s.leases_granted, 0u);
  EXPECT_EQ(s.publishes_unsolicited, 1u);
  EXPECT_TRUE(s.leases_balanced());
}

TEST_F(DaemonTest, QuarantineQueryAndReleaseOverTheWire) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ServiceClient client(client_config());

  std::uint64_t lease = 0;
  client.acquire(66, &lease);
  client.publish(66, lease, failed_results());

  // The daemon mirrors the evaluator's quarantine rule: a publish with any
  // failed benchmark quarantines the signature.
  EXPECT_EQ(client.query_quarantine(66), std::optional<bool>(true));
  EXPECT_EQ(client.query_quarantine(67), std::optional<bool>(false));

  // Release lifts the quarantine AND drops the penalized entry, so the next
  // acquire is a miss (fresh guarded run) instead of serving the old trap.
  EXPECT_EQ(client.release_quarantine(66), std::optional<bool>(true));
  EXPECT_EQ(client.query_quarantine(66), std::optional<bool>(false));
  EXPECT_EQ(client.release_quarantine(66), std::optional<bool>(false));  // idempotent

  std::uint64_t lease2 = 0;
  EXPECT_FALSE(client.acquire(66, &lease2).has_value());
  EXPECT_NE(lease2, 0u);

  daemon.stop();
}

TEST_F(DaemonTest, QuarantineReleaseRefusedWhileLeased) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ServiceClient client(client_config());

  // Take a lease on 66, then land failed results via an *unsolicited*
  // publish (lease 0): 66 is now quarantined while the real lease is still
  // outstanding — exactly the "in flight somewhere" window release must
  // refuse.
  std::uint64_t lease = 0;
  ASSERT_FALSE(client.acquire(66, &lease).has_value());
  ASSERT_NE(lease, 0u);
  client.publish(66, 0, failed_results());
  EXPECT_EQ(client.query_quarantine(66), std::optional<bool>(true));
  EXPECT_EQ(client.release_quarantine(66), std::optional<bool>(false));

  // Completing the lease closes the window; release now succeeds.
  client.publish(66, lease, failed_results());
  EXPECT_EQ(client.release_quarantine(66), std::optional<bool>(true));

  daemon.stop();
  EXPECT_TRUE(daemon.stats().leases_balanced());
}

TEST_F(DaemonTest, ImportFederatesAndRejectsForeignFingerprint) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();

  tuner::EvalCacheSnapshot snap;
  snap.fingerprint = kFingerprint;
  snap.entries.push_back({10, ok_results(1)});
  snap.entries.push_back({11, failed_results()});
  snap.quarantined.push_back(11);
  const tuner::SnapshotMergeStats merged = daemon.import_snapshot(snap);
  EXPECT_EQ(merged.added, 2u);

  svc::ServiceClient client(client_config());
  std::uint64_t lease = 0;
  EXPECT_TRUE(client.acquire(10, &lease).has_value());
  EXPECT_EQ(client.query_quarantine(11), std::optional<bool>(true));

  tuner::EvalCacheSnapshot foreign;
  foreign.fingerprint = kFingerprint ^ 2;
  foreign.entries.push_back({12, ok_results(2)});
  EXPECT_THROW(daemon.import_snapshot(foreign), Error);

  daemon.stop();
  EXPECT_EQ(daemon.stats().imports, 1u);
}

TEST_F(DaemonTest, SnapshotPersistsAcrossRestart) {
  svc::DaemonConfig dc = daemon_config();
  dc.snapshot_path = snapshot_;
  {
    svc::EvalDaemon daemon(dc);
    daemon.start();
    svc::ServiceClient client(client_config());
    std::uint64_t lease = 0;
    client.acquire(42, &lease);
    client.publish(42, lease, ok_results(0));
    client.acquire(43, &lease);
    client.publish(43, lease, failed_results());
    daemon.stop();  // graceful: final snapshot
  }

  svc::EvalDaemon reborn(dc);
  reborn.start();  // reloads + federates the snapshot file
  svc::ServiceClient client(client_config());
  std::uint64_t lease = 0;
  EXPECT_TRUE(client.acquire(42, &lease).has_value());
  EXPECT_EQ(client.query_quarantine(43), std::optional<bool>(true));
  reborn.stop();
  EXPECT_EQ(reborn.stats().imports, 1u);
}

TEST_F(DaemonTest, KillLosesUnsnapshottedStateButSweepsCleanly) {
  svc::DaemonConfig dc = daemon_config();
  dc.snapshot_path = snapshot_;
  dc.snapshot_every = 1;  // snapshot after every publish
  {
    svc::EvalDaemon daemon(dc);
    daemon.start();
    svc::ServiceClient client(client_config());
    std::uint64_t lease = 0;
    client.acquire(42, &lease);
    client.publish(42, lease, ok_results(0));  // periodic snapshot fires here
    while (daemon.stats().snapshots_written == 0) std::this_thread::yield();
    daemon.kill();  // crash: no final snapshot, socket unlinked
  }

  svc::EvalDaemon reborn(dc);
  reborn.start();
  svc::ServiceClient client(client_config());
  std::uint64_t lease = 0;
  EXPECT_TRUE(client.acquire(42, &lease).has_value());  // survived via periodic snapshot
  reborn.stop();
}

TEST_F(DaemonTest, ClientQueuesPublishesWhileDownAndReattachFlushes) {
  // No daemon yet: the client degrades to local immediately and queues.
  svc::ClientConfig cc = client_config();
  cc.max_attempts = 1;
  svc::ServiceClient client(cc);
  std::uint64_t lease = ~0ull;
  EXPECT_FALSE(client.acquire(42, &lease).has_value());
  EXPECT_EQ(lease, 0u);  // degraded: compute locally, no lease
  client.publish(42, 0, ok_results(0));
  client.publish(43, 0, ok_results(1));
  EXPECT_EQ(client.pending_publishes(), 2u);
  EXPECT_FALSE(client.fatally_degraded());

  // Daemon comes up; an explicit reattach re-federates the queue.
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  EXPECT_TRUE(client.reattach());
  EXPECT_EQ(client.pending_publishes(), 0u);

  const auto hit = client.acquire(42, &lease);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at(0).running_cycles, 1000u);

  daemon.stop();
  const svc::DaemonStats s = daemon.stats();
  EXPECT_EQ(s.publishes_unsolicited, 2u);  // flushed with lease 0
  EXPECT_TRUE(s.leases_balanced());
}

TEST_F(DaemonTest, DaemonStatsServedOverTheWire) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();
  svc::ServiceClient client(client_config());
  std::uint64_t lease = 0;
  client.acquire(42, &lease);
  client.publish(42, lease, ok_results(0));

  const auto counters = client.stats();
  ASSERT_TRUE(counters.has_value());
  std::uint64_t granted = ~0ull, published = ~0ull;
  for (const auto& [name, value] : *counters) {
    if (name == "svc.leases_granted") granted = value;
    if (name == "svc.leases_published") published = value;
  }
  EXPECT_EQ(granted, 1u);
  EXPECT_EQ(published, 1u);
  daemon.stop();
}

/// Raw client socket for hostile-peer tests (the real ServiceClient can
/// only speak the protocol correctly).
int raw_connect(const std::string& path, int recv_timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = recv_timeout_ms / 1000;
  tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

/// Completes a valid handshake on a raw fd; returns true on kHelloOk.
bool raw_hello(int fd) {
  svc::HelloMsg hello;
  hello.fingerprint = kFingerprint;
  hello.client_id = 99;
  hello.name = "hostile";
  if (!svc::write_frame(fd, svc::MsgType::kHello, svc::encode_hello(hello))) return false;
  svc::Frame reply;
  return svc::read_frame(fd, &reply) == svc::ReadStatus::kOk &&
         reply.type == svc::MsgType::kHelloOk;
}

TEST_F(DaemonTest, MalformedRequestPayloadDropsConnectionNotDaemon) {
  // A checksummed frame whose payload is garbage for its type (here: an
  // empty kEvalAcquire, which needs a u64 signature) must cost the sender
  // its connection — not std::terminate the daemon and the fleet's cache.
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();

  const int fd = raw_connect(socket_, 2000);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_hello(fd));
  ASSERT_TRUE(svc::write_frame(fd, svc::MsgType::kEvalAcquire, ""));
  svc::Frame got;
  EXPECT_EQ(svc::read_frame(fd, &got), svc::ReadStatus::kClosed);
  ::close(fd);

  // The daemon survived and still serves well-behaved clients.
  svc::ServiceClient client(client_config());
  std::uint64_t lease = 0;
  EXPECT_FALSE(client.acquire(42, &lease).has_value());
  EXPECT_NE(lease, 0u);

  daemon.stop();
  EXPECT_GE(daemon.stats().frames_rejected, 1u);
  EXPECT_TRUE(daemon.stats().leases_balanced());
}

TEST_F(DaemonTest, MalformedHelloDropsConnectionNotDaemon) {
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();

  const int fd = raw_connect(socket_, 2000);
  ASSERT_GE(fd, 0);
  // One byte where a fingerprint + id + name should be: decode_hello throws.
  ASSERT_TRUE(svc::write_frame(fd, svc::MsgType::kHello, std::string("\x01", 1)));
  svc::Frame got;
  EXPECT_EQ(svc::read_frame(fd, &got), svc::ReadStatus::kClosed);
  ::close(fd);

  svc::ServiceClient client(client_config());
  std::uint64_t lease = 0;
  EXPECT_FALSE(client.acquire(42, &lease).has_value());

  daemon.stop();
  EXPECT_GE(daemon.stats().frames_rejected, 1u);
}

TEST_F(DaemonTest, SilentPeerDroppedByHandshakeDeadline) {
  // A peer that connects and never says hello must not pin a daemon thread
  // forever: the handshake deadline closes it from the daemon side.
  svc::DaemonConfig dc = daemon_config();
  dc.handshake_timeout_ms = 100;
  svc::EvalDaemon daemon(dc);
  daemon.start();

  const int fd = raw_connect(socket_, 5000);
  ASSERT_GE(fd, 0);
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "daemon did not hang up on the silent peer";
  ::close(fd);

  daemon.stop();
}

TEST_F(DaemonTest, FinishedConnectionThreadsAreReaped) {
  // A long-lived daemon serving many short connections must not accumulate
  // one dead (joinable) thread per past connection.
  svc::EvalDaemon daemon(daemon_config());
  daemon.start();

  for (int i = 0; i < 5; ++i) {
    svc::ClientConfig cc = client_config();
    cc.client_id = static_cast<std::uint64_t>(i) + 1;
    svc::ServiceClient client(cc);
    std::uint64_t lease = 0;
    client.acquire(42, &lease);
    if (lease != 0) client.publish(42, lease, ok_results(0));
  }  // each destructor disconnects; the accept loop reaps on its next tick

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon.live_connection_threads() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(daemon.live_connection_threads(), 0u);

  daemon.stop();
  EXPECT_EQ(daemon.stats().connections_accepted, 5u);
  EXPECT_TRUE(daemon.stats().leases_balanced());
}

TEST_F(DaemonTest, CorruptSnapshotAtStartIsQuarantinedNotFatal) {
  // A torn/corrupt published snapshot must not make the daemon
  // unrestartable: it is set aside as <path>.corrupt and the daemon starts
  // with an empty repository.
  {
    std::ofstream out(snapshot_, std::ios::binary);
    out << "ITHEVC1 this is not a valid snapshot";
  }

  svc::DaemonConfig dc = daemon_config();
  dc.snapshot_path = snapshot_;
  svc::EvalDaemon daemon(dc);
  daemon.start();  // must not throw
  EXPECT_EQ(daemon.stats().snapshots_quarantined, 1u);
  EXPECT_FALSE(std::ifstream(snapshot_).good()) << "corrupt file left in the restart path";
  EXPECT_TRUE(std::ifstream(snapshot_ + ".corrupt").good()) << "corrupt file not preserved";

  // The daemon is healthy: serve, publish, and snapshot over the bad file's
  // old path on graceful stop, after which a restart loads clean.
  svc::ServiceClient client(client_config());
  std::uint64_t lease = 0;
  EXPECT_FALSE(client.acquire(42, &lease).has_value());
  client.publish(42, lease, ok_results(0));
  daemon.stop();

  svc::EvalDaemon reborn(dc);
  reborn.start();
  EXPECT_EQ(reborn.stats().snapshots_quarantined, 0u);
  svc::ServiceClient again(client_config());
  EXPECT_TRUE(again.acquire(42, &lease).has_value());
  reborn.stop();
}

TEST_F(DaemonTest, LeasesBalanceUnderInjectedChaos) {
  // Heavy deterministic chaos on every service site. Clients run a fixed
  // acquire/compute/publish workload; whatever the faults do, the ledger
  // must balance and the daemon must never wedge.
  svc::DaemonConfig dc = daemon_config();
  dc.faults.rate = 0.3;
  dc.faults.seed = 1234;
  dc.faults.sites = resilience::FaultPlan::service_sites();
  dc.snapshot_path = snapshot_;
  dc.snapshot_every = 2;
  svc::EvalDaemon daemon(dc);
  daemon.start();

  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      svc::ClientConfig cc = client_config();
      cc.client_id = static_cast<std::uint64_t>(c) + 1;
      cc.max_attempts = 2;
      svc::ServiceClient client(cc);
      for (std::uint64_t sig = 1; sig <= 20; ++sig) {
        std::uint64_t lease = 0;
        const auto hit = client.acquire(sig, &lease);
        if (!hit.has_value()) client.publish(sig, lease, ok_results(sig));
      }
      client.reattach();  // flush anything queued while degraded
    });
  }
  for (std::thread& t : threads) t.join();

  daemon.stop();
  const svc::DaemonStats s = daemon.stats();
  EXPECT_GT(s.faults_injected, 0u) << "chaos config injected nothing";
  EXPECT_TRUE(s.leases_balanced())
      << "granted=" << s.leases_granted << " published=" << s.leases_published
      << " reclaimed=" << s.leases_reclaimed << " outstanding=" << s.leases_outstanding;
  EXPECT_EQ(s.leases_outstanding, 0u) << "leaked leases after all clients disconnected";

  // The periodic snapshots (whichever survived injection) must reload clean.
  svc::EvalDaemon reborn(dc);
  reborn.start();
  reborn.stop();
}

}  // namespace
}  // namespace ith
