// Wire protocol: frame roundtrips over a real socketpair, loud rejection of
// every corruption mode a torn or hostile stream can exhibit, and payload
// codec roundtrips (including the embedded encode_results bytes).
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resilience/budget.hpp"
#include "service/protocol.hpp"
#include "support/error.hpp"

namespace ith {
namespace {

class SocketPair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    close_a();
    close_b();
  }
  void close_a() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void close_b() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST_F(SocketPair, FrameRoundtrip) {
  const std::string payload = "hello frame";
  ASSERT_TRUE(svc::write_frame(a(), svc::MsgType::kEvalAcquire, payload));
  svc::Frame got;
  ASSERT_EQ(svc::read_frame(b(), &got), svc::ReadStatus::kOk);
  EXPECT_EQ(got.type, svc::MsgType::kEvalAcquire);
  EXPECT_EQ(got.payload, payload);
}

TEST_F(SocketPair, EmptyPayloadRoundtrip) {
  ASSERT_TRUE(svc::write_frame(a(), svc::MsgType::kStats, ""));
  svc::Frame got;
  ASSERT_EQ(svc::read_frame(b(), &got), svc::ReadStatus::kOk);
  EXPECT_EQ(got.type, svc::MsgType::kStats);
  EXPECT_TRUE(got.payload.empty());
}

TEST_F(SocketPair, CleanCloseIsClosed) {
  close_a();
  svc::Frame got;
  EXPECT_EQ(svc::read_frame(b(), &got), svc::ReadStatus::kClosed);
}

TEST_F(SocketPair, TornHeaderIsError) {
  // Write half a header, then close: mid-frame EOF must be an error, not a
  // clean close — the peer died inside a frame.
  const char junk[10] = {'I', 'T', 'H', 'S', 'V', 'P', '1', '\0', 1, 0};
  ASSERT_EQ(::send(a(), junk, sizeof junk, 0), static_cast<ssize_t>(sizeof junk));
  close_a();
  svc::Frame got;
  std::string error;
  EXPECT_EQ(svc::read_frame(b(), &got, &error), svc::ReadStatus::kError);
  EXPECT_NE(error.find("torn"), std::string::npos) << error;
}

TEST_F(SocketPair, BadMagicIsError) {
  std::string raw(32, '\0');
  std::memcpy(raw.data(), "NOTMAGIC", 8);
  ASSERT_EQ(::send(a(), raw.data(), raw.size(), 0), static_cast<ssize_t>(raw.size()));
  svc::Frame got;
  std::string error;
  EXPECT_EQ(svc::read_frame(b(), &got, &error), svc::ReadStatus::kError);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(SocketPair, ChecksumMismatchIsError) {
  // A valid frame with one payload bit flipped in transit.
  ASSERT_TRUE(svc::write_frame(a(), svc::MsgType::kEvalResult, "payload-bytes"));
  std::string raw(32 + 13, '\0');
  ASSERT_EQ(::recv(b(), raw.data(), raw.size(), 0), static_cast<ssize_t>(raw.size()));
  raw[34] ^= 0x40;  // inside the payload
  ASSERT_EQ(::send(b(), raw.data(), raw.size(), 0), static_cast<ssize_t>(raw.size()));
  svc::Frame got;
  std::string error;
  EXPECT_EQ(svc::read_frame(a(), &got, &error), svc::ReadStatus::kError);
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(SocketPair, OversizedFrameIsError) {
  // A corrupt size field must fail cleanly, never allocate terabytes.
  std::string raw(32, '\0');
  std::memcpy(raw.data(), "ITHSVP1\0", 8);
  const std::uint64_t huge = ~0ull;
  std::memcpy(raw.data() + 16, &huge, sizeof huge);
  ASSERT_EQ(::send(a(), raw.data(), raw.size(), 0), static_cast<ssize_t>(raw.size()));
  svc::Frame got;
  std::string error;
  EXPECT_EQ(svc::read_frame(b(), &got, &error), svc::ReadStatus::kError);
  EXPECT_NE(error.find("size"), std::string::npos) << error;
}

namespace {
void set_recv_timeout_ms(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv), 0);
}
}  // namespace

TEST_F(SocketPair, TimeoutBeforeAnyByteIsRetryableTimeout) {
  // Deadline fires with nothing consumed: the stream is still frame-aligned,
  // so the caller may retry the read on the same fd.
  set_recv_timeout_ms(b(), 50);
  svc::Frame got;
  EXPECT_EQ(svc::read_frame(b(), &got), svc::ReadStatus::kTimeout);

  // Prove the alignment claim: a full frame sent afterwards parses fine.
  ASSERT_TRUE(svc::write_frame(a(), svc::MsgType::kStats, ""));
  EXPECT_EQ(svc::read_frame(b(), &got), svc::ReadStatus::kOk);
  EXPECT_EQ(got.type, svc::MsgType::kStats);
}

TEST_F(SocketPair, TimeoutMidHeaderIsError) {
  // Half a header then silence: part of the stream is consumed when the
  // deadline fires, so the connection is desynchronized — this must be
  // kError (close the connection), never a retry-inviting kTimeout.
  const char junk[10] = {'I', 'T', 'H', 'S', 'V', 'P', '1', '\0', 1, 0};
  ASSERT_EQ(::send(a(), junk, sizeof junk, 0), static_cast<ssize_t>(sizeof junk));
  set_recv_timeout_ms(b(), 50);
  svc::Frame got;
  std::string error;
  EXPECT_EQ(svc::read_frame(b(), &got, &error), svc::ReadStatus::kError);
  EXPECT_NE(error.find("timeout"), std::string::npos) << error;
}

TEST_F(SocketPair, TimeoutMidPayloadIsError) {
  // A complete header promising 8 payload bytes that never arrive: the
  // header is consumed, so even a payload deadline is a desync, not a
  // retryable timeout.
  std::string raw(32, '\0');
  std::memcpy(raw.data(), "ITHSVP1\0", 8);
  const std::uint32_t type = 4;  // kEvalAcquire
  std::memcpy(raw.data() + 8, &type, sizeof type);
  const std::uint64_t size = 8;
  std::memcpy(raw.data() + 16, &size, sizeof size);
  ASSERT_EQ(::send(a(), raw.data(), raw.size(), 0), static_cast<ssize_t>(raw.size()));
  set_recv_timeout_ms(b(), 50);
  svc::Frame got;
  std::string error;
  EXPECT_EQ(svc::read_frame(b(), &got, &error), svc::ReadStatus::kError);
  EXPECT_NE(error.find("timeout"), std::string::npos) << error;
}

TEST(Protocol, HelloRoundtrip) {
  svc::HelloMsg msg;
  msg.fingerprint = 0xfeedfacecafebeefULL;
  msg.client_id = 17;
  msg.name = "client-17";
  const svc::HelloMsg got = svc::decode_hello(svc::encode_hello(msg));
  EXPECT_EQ(got.fingerprint, msg.fingerprint);
  EXPECT_EQ(got.client_id, msg.client_id);
  EXPECT_EQ(got.name, msg.name);
}

TEST(Protocol, ResultsMsgRoundtrip) {
  svc::ResultsMsg msg;
  msg.signature = 0x1234;
  msg.lease_id = 99;
  tuner::BenchmarkResult ok;
  ok.name = "compress";
  ok.running_cycles = 1000;
  ok.total_cycles = 1500;
  ok.compile_cycles = 500;
  ok.attempts = 2;
  msg.results.push_back(ok);
  tuner::BenchmarkResult failed;
  failed.name = "db";
  failed.outcome =
      resilience::EvalOutcome::make_trap(resilience::TrapKind::kInjected, "injected");
  failed.attempts = 0;
  msg.results.push_back(failed);

  const svc::ResultsMsg got = svc::decode_results_msg(svc::encode_results_msg(msg));
  EXPECT_EQ(got.signature, msg.signature);
  EXPECT_EQ(got.lease_id, msg.lease_id);
  ASSERT_EQ(got.results.size(), 2u);
  EXPECT_EQ(got.results[0].name, "compress");
  EXPECT_EQ(got.results[0].running_cycles, 1000u);
  EXPECT_EQ(got.results[0].attempts, 2);
  EXPECT_FALSE(got.results[1].outcome.ok());
  EXPECT_EQ(got.results[1].outcome.detail, "injected");
}

TEST(Protocol, PairAndCountersRoundtrip) {
  const auto [x, y] = svc::decode_u64_pair(svc::encode_u64_pair(7, ~0ull));
  EXPECT_EQ(x, 7u);
  EXPECT_EQ(y, ~0ull);
  const std::vector<std::pair<std::string, std::uint64_t>> counters = {
      {"svc.hits", 12}, {"svc.waits", 0}};
  EXPECT_EQ(svc::decode_counters(svc::encode_counters(counters)), counters);
}

TEST(Protocol, TruncatedPayloadThrows) {
  const std::string whole = svc::encode_u64_pair(1, 2);
  EXPECT_THROW(svc::decode_u64_pair(whole.substr(0, 12)), Error);
  EXPECT_THROW(svc::decode_hello(std::string("\x01", 1)), Error);
}

}  // namespace
}  // namespace ith
