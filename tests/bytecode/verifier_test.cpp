#include "bytecode/verifier.hpp"

#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace ith::bc {
namespace {

/// Builds a single-method program around raw instructions (no build-time
/// verification) so malformed shapes can be fed to the verifier directly.
Program raw_program(std::vector<Instruction> code, int num_args = 0, int num_locals = 2) {
  Program p("raw");
  Method m("main", num_args, num_locals);
  for (const Instruction& insn : code) m.append(insn);
  p.add_method(std::move(m));
  p.set_entry(0);
  return p;
}

TEST(Verifier, AcceptsFixturePrograms) {
  EXPECT_NO_THROW(verify_program(ith::test::make_add_program()));
  EXPECT_NO_THROW(verify_program(ith::test::make_loop_program()));
  EXPECT_NO_THROW(verify_program(ith::test::make_fib_program()));
  EXPECT_NO_THROW(verify_program(ith::test::make_globals_program()));
}

TEST(Verifier, ComputesMaxStack) {
  // const const const add add halt -> peak depth 3
  const Program p = raw_program({{Op::kConst, 1, 0},
                                 {Op::kConst, 2, 0},
                                 {Op::kConst, 3, 0},
                                 {Op::kAdd, 0, 0},
                                 {Op::kAdd, 0, 0},
                                 {Op::kHalt, 0, 0}});
  const auto infos = verify_program(p);
  EXPECT_EQ(infos[0].max_stack, 3);
  EXPECT_EQ(infos[0].reachable, 6u);
}

TEST(Verifier, RejectsStackUnderflow) {
  const Program p = raw_program({{Op::kAdd, 0, 0}, {Op::kHalt, 0, 0}});
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsFallThroughEnd) {
  const Program p = raw_program({{Op::kConst, 1, 0}, {Op::kPop, 0, 0}});
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsBranchOutOfRange) {
  const Program p = raw_program({{Op::kJmp, 9, 0}, {Op::kHalt, 0, 0}});
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsLocalOutOfRange) {
  const Program p = raw_program({{Op::kLoad, 5, 0}, {Op::kHalt, 0, 0}}, 0, 2);
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsNegativeLocal) {
  const Program p = raw_program({{Op::kLoad, -1, 0}, {Op::kHalt, 0, 0}});
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsInconsistentJoinDepth) {
  // Two paths reach pc 4 with different stack depths.
  const Program p = raw_program({
      {Op::kConst, 0, 0},  // 0: push
      {Op::kJz, 4, 0},     // 1: pop, branch to 4 (depth 0)
      {Op::kConst, 7, 0},  // 2: push (depth 1)
      {Op::kNop, 0, 0},    // 3: fall through to 4 at depth 1
      {Op::kHalt, 0, 0},   // 4: join
  });
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsCallArityMismatch) {
  Program p("p");
  Method callee("f", 2, 2);
  callee.append({Op::kConst, 1, 0});
  callee.append({Op::kRet, 0, 0});
  p.add_method(std::move(callee));
  Method m("main", 0, 0);
  m.append({Op::kConst, 1, 0});
  m.append({Op::kCall, 0, 1});  // f takes 2 args, called with 1
  m.append({Op::kHalt, 0, 0});
  p.add_method(std::move(m));
  p.set_entry(p.find_method("main"));
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsCallTargetOutOfRange) {
  const Program p = raw_program({{Op::kCall, 7, 0}, {Op::kHalt, 0, 0}});
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsRetOnEmptyStack) {
  const Program p = raw_program({{Op::kRet, 0, 0}});
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsEntryWithArguments) {
  Program p("p");
  Method m("main", 1, 1);
  m.append({Op::kConst, 0, 0});
  m.append({Op::kHalt, 0, 0});
  p.add_method(std::move(m));
  p.set_entry(0);
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, RejectsEmptyMethod) {
  Program p("p");
  p.add_method(Method("main", 0, 0));
  p.set_entry(0);
  EXPECT_THROW(verify_program(p), Error);
}

TEST(Verifier, UnreachableCodeIsNotVerifiedForDepth) {
  // Code after an unconditional jmp is unreachable; even though it would
  // underflow, the method is accepted (matching JVM-style reachability).
  const Program p = raw_program({
      {Op::kJmp, 2, 0},
      {Op::kAdd, 0, 0},  // unreachable underflow
      {Op::kHalt, 0, 0},
  });
  const auto infos = verify_program(p);
  EXPECT_EQ(infos[0].reachable, 2u);
}

TEST(Verifier, LoopsVerify) {
  const Program p = ith::test::make_loop_program(5);
  const auto infos = verify_program(p);
  EXPECT_GT(infos[p.entry()].max_stack, 0);
}

TEST(Verifier, ErrorMessageNamesMethodAndPc) {
  const Program p = raw_program({{Op::kAdd, 0, 0}, {Op::kHalt, 0, 0}});
  try {
    verify_program(p);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("main"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pc 0"), std::string::npos);
  }
}

}  // namespace
}  // namespace ith::bc
