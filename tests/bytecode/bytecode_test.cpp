// Tests for the IR: instruction metadata, Method/Program containers,
// the builder DSL, and the size estimator.
#include <gtest/gtest.h>

#include "bytecode/builder.hpp"
#include "bytecode/instruction.hpp"
#include "bytecode/size_estimator.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace ith::bc {
namespace {

// --- Instruction metadata ---------------------------------------------------

TEST(OpInfo, EveryOpcodeHasMetadata) {
  for (int i = 0; i < kNumOps; ++i) {
    const OpInfo& info = op_info(static_cast<Op>(i));
    EXPECT_FALSE(info.name.empty());
    EXPECT_GE(info.machine_words, 0);
  }
}

TEST(OpInfo, NamesAreUniqueAndRoundTrip) {
  for (int i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    Op parsed;
    ASSERT_TRUE(op_from_name(op_info(op).name, parsed)) << op_info(op).name;
    EXPECT_EQ(parsed, op);
  }
}

TEST(OpInfo, UnknownNameRejected) {
  Op op;
  EXPECT_FALSE(op_from_name("frobnicate", op));
}

TEST(StackEffect, CallDependsOnArity) {
  EXPECT_EQ(stack_effect(Instruction{Op::kCall, 0, 0}), 1);   // push result
  EXPECT_EQ(stack_effect(Instruction{Op::kCall, 0, 2}), -1);  // pop 2, push 1
  EXPECT_EQ(stack_effect(Instruction{Op::kCall, 0, 5}), -4);
}

TEST(StackEffect, CommonOps) {
  EXPECT_EQ(stack_effect(Instruction{Op::kConst, 1, 0}), 1);
  EXPECT_EQ(stack_effect(Instruction{Op::kAdd, 0, 0}), -1);
  EXPECT_EQ(stack_effect(Instruction{Op::kGStore, 0, 0}), -2);
  EXPECT_EQ(stack_effect(Instruction{Op::kPop, 0, 0}), -1);
  EXPECT_EQ(stack_effect(Instruction{Op::kNop, 0, 0}), 0);
}

TEST(OpInfo, TerminatorsMarked) {
  EXPECT_TRUE(op_info(Op::kJmp).is_terminator);
  EXPECT_TRUE(op_info(Op::kRet).is_terminator);
  EXPECT_TRUE(op_info(Op::kHalt).is_terminator);
  EXPECT_FALSE(op_info(Op::kJz).is_terminator);
  EXPECT_FALSE(op_info(Op::kAdd).is_terminator);
}

TEST(OpInfo, BranchesMarked) {
  EXPECT_TRUE(op_info(Op::kJmp).is_branch);
  EXPECT_TRUE(op_info(Op::kJz).is_branch);
  EXPECT_TRUE(op_info(Op::kJnz).is_branch);
  EXPECT_FALSE(op_info(Op::kCall).is_branch);  // callee ids are not pcs
}

// --- Method -------------------------------------------------------------------

TEST(Method, LocalsMustCoverArgs) {
  EXPECT_THROW(Method("m", 3, 2), Error);
  Method m("m", 2, 2);
  EXPECT_THROW(m.set_num_locals(1), Error);
  m.set_num_locals(5);
  EXPECT_EQ(m.num_locals(), 5);
}

TEST(Method, CallSitesFound) {
  Method m("m", 0, 0);
  m.append({Op::kConst, 1, 0});
  m.append({Op::kCall, 0, 0});
  m.append({Op::kPop, 0, 0});
  m.append({Op::kCall, 0, 0});
  m.append({Op::kHalt, 0, 0});
  EXPECT_EQ(m.call_sites(), (std::vector<std::size_t>{1, 3}));
}

TEST(Method, BackEdgeCount) {
  Method m("m", 0, 1);
  m.append({Op::kConst, 0, 0});   // 0
  m.append({Op::kJz, 0, 0});      // 1: backward (target 0)
  m.append({Op::kJmp, 3, 0});     // 2: forward... target 3 > 2
  m.append({Op::kHalt, 0, 0});    // 3
  EXPECT_EQ(m.back_edge_count(), 1u);
}

// --- Program --------------------------------------------------------------------

TEST(Program, DuplicateMethodNameRejected) {
  Program p("p");
  p.add_method(Method("m", 0, 0));
  EXPECT_THROW(p.add_method(Method("m", 1, 1)), Error);
}

TEST(Program, FindMethodByName) {
  Program p("p");
  const MethodId a = p.add_method(Method("a", 0, 0));
  const MethodId b = p.add_method(Method("b", 0, 0));
  EXPECT_EQ(p.find_method("a"), a);
  EXPECT_EQ(p.find_method("b"), b);
  EXPECT_THROW(p.find_method("c"), ith::Error);
  EXPECT_TRUE(p.has_method("a"));
  EXPECT_FALSE(p.has_method("c"));
}

TEST(Program, MethodIdBoundsChecked) {
  Program p("p");
  p.add_method(Method("a", 0, 0));
  EXPECT_THROW(p.method(-1), ith::Error);
  EXPECT_THROW(p.method(1), ith::Error);
}

TEST(Program, TotalCodeSizeSums) {
  const Program p = ith::test::make_add_program();
  std::size_t expected = 0;
  for (const Method& m : p.methods()) expected += m.size();
  EXPECT_EQ(p.total_code_size(), expected);
}

// --- Builder --------------------------------------------------------------------

TEST(Builder, BuildsRunnableProgram) {
  const Program p = ith::test::make_add_program();
  EXPECT_EQ(ith::test::run_exit_value(p), 5);
}

TEST(Builder, UndefinedLabelRejected) {
  ProgramBuilder pb("p");
  pb.method("main", 0, 0).jmp("nowhere");
  pb.entry("main");
  EXPECT_THROW(pb.build(), Error);
}

TEST(Builder, DuplicateLabelRejected) {
  ProgramBuilder pb("p");
  auto& m = pb.method("main", 0, 0);
  m.label("l");
  EXPECT_THROW(m.label("l"), Error);
}

TEST(Builder, UnknownCalleeRejected) {
  ProgramBuilder pb("p");
  pb.method("main", 0, 0).call("ghost", 0).halt();
  pb.entry("main");
  EXPECT_THROW(pb.build(), Error);
}

TEST(Builder, MissingEntryRejected) {
  ProgramBuilder pb("p");
  pb.method("main", 0, 0).halt();
  EXPECT_THROW(pb.build(), Error);
}

TEST(Builder, ReopeningMethodAppends) {
  ProgramBuilder pb("p");
  pb.method("main", 0, 0).const_(1);
  pb.method("main", 0, 0).halt();  // same signature: continues the body
  pb.entry("main");
  const Program p = pb.build();
  EXPECT_EQ(p.method(p.entry()).size(), 2u);
}

TEST(Builder, ReopeningWithDifferentSignatureRejected) {
  ProgramBuilder pb("p");
  pb.method("main", 0, 0);
  EXPECT_THROW(pb.method("main", 1, 1), Error);
}

TEST(Builder, ConstImmediateRangeChecked) {
  ProgramBuilder pb("p");
  auto& m = pb.method("main", 0, 0);
  EXPECT_THROW(m.const_(5'000'000'000LL), Error);
  m.const_(2'000'000'000LL);  // fits in 32 bits
}

TEST(Builder, ForwardAndBackwardLabels) {
  // while (i < 3) ++i; return i  — exercises both label directions.
  ProgramBuilder pb("p");
  auto& m = pb.method("main", 0, 1);
  m.const_(0).store(0);
  m.label("head");
  m.load(0).const_(3).cmplt().jz("exit");
  m.load(0).const_(1).add().store(0);
  m.jmp("head");
  m.label("exit");
  m.load(0).halt();
  pb.entry("main");
  EXPECT_EQ(ith::test::run_exit_value(pb.build()), 3);
}

// --- Size estimator ---------------------------------------------------------------

TEST(SizeEstimator, MethodSizeIncludesFrameOverhead) {
  Method m("m", 0, 0);
  m.append({Op::kConst, 1, 0});
  m.append({Op::kRet, 0, 0});
  EXPECT_EQ(estimated_method_size(m),
            kFrameOverheadWords + op_info(Op::kConst).machine_words + op_info(Op::kRet).machine_words);
}

TEST(SizeEstimator, CallsAreExpensive) {
  EXPECT_GT(estimated_words({Op::kCall, 0, 0}), estimated_words({Op::kAdd, 0, 0}));
}

TEST(SizeEstimator, PopAndNopAreFree) {
  EXPECT_EQ(estimated_words({Op::kPop, 0, 0}), 0);
  EXPECT_EQ(estimated_words({Op::kNop, 0, 0}), 0);
}

TEST(SizeEstimator, ProgramSizeSumsMethods) {
  const Program p = ith::test::make_loop_program();
  std::size_t sum = 0;
  for (const Method& m : p.methods()) sum += static_cast<std::size_t>(estimated_method_size(m));
  EXPECT_EQ(estimated_program_size(p), sum);
}

}  // namespace
}  // namespace ith::bc
