#include "bytecode/serializer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "testing.hpp"
#include "workloads/suite.hpp"

namespace ith::bc {
namespace {

TEST(Serializer, RoundTripsFixtures) {
  for (const Program& p : {ith::test::make_add_program(), ith::test::make_loop_program(),
                           ith::test::make_fib_program(), ith::test::make_globals_program()}) {
    const std::string text = dump_program(p);
    const Program back = parse_program(text);
    EXPECT_EQ(back, p) << text;
  }
}

TEST(Serializer, RoundTripsEveryWorkload) {
  for (const std::string& name : wl::spec_names()) {
    const Program p = wl::make_workload(name).program;
    EXPECT_EQ(parse_program(dump_program(p)), p) << name;
  }
  for (const std::string& name : wl::dacapo_names()) {
    const Program p = wl::make_workload(name).program;
    EXPECT_EQ(parse_program(dump_program(p)), p) << name;
  }
}

TEST(Serializer, PreservesSemantics) {
  const Program p = ith::test::make_fib_program(12);
  const Program back = parse_program(dump_program(p));
  EXPECT_EQ(ith::test::run_exit_value(back), ith::test::run_exit_value(p));
}

TEST(Serializer, ParsesHandWrittenAssembly) {
  const std::string text = R"(
program name=demo globals=8 entry=main
# a comment line
method helper args=1 locals=1 {
  load 0
  const 2
  mul
  ret
}
method main args=0 locals=0 {
  const 21
  call helper 1
  halt
}
)";
  const Program p = parse_program(text);
  EXPECT_EQ(p.name(), "demo");
  EXPECT_EQ(p.globals_size(), 8u);
  EXPECT_EQ(ith::test::run_exit_value(p), 42);
}

TEST(Serializer, RejectsUnknownOpcode) {
  const std::string text =
      "program name=x globals=0 entry=main\nmethod main args=0 locals=0 {\n  zap 1\n}\n";
  EXPECT_THROW(parse_program(text), Error);
}

TEST(Serializer, RejectsUnknownCallee) {
  const std::string text =
      "program name=x globals=0 entry=main\nmethod main args=0 locals=0 {\n  call ghost 0\n  halt\n}\n";
  EXPECT_THROW(parse_program(text), Error);
}

TEST(Serializer, RejectsMissingHeader) {
  EXPECT_THROW(parse_program("method main args=0 locals=0 {\n  halt\n}\n"), Error);
}

TEST(Serializer, RejectsUnterminatedMethod) {
  const std::string text = "program name=x globals=0 entry=main\nmethod main args=0 locals=0 {\n  halt\n";
  EXPECT_THROW(parse_program(text), Error);
}

TEST(Serializer, RejectsTrailingTokens) {
  const std::string text =
      "program name=x globals=0 entry=main\nmethod main args=0 locals=0 {\n  halt extra\n}\n";
  EXPECT_THROW(parse_program(text), Error);
}

TEST(Serializer, RejectsUnknownEntry) {
  const std::string text =
      "program name=x globals=0 entry=nosuch\nmethod main args=0 locals=0 {\n  halt\n}\n";
  EXPECT_THROW(parse_program(text), Error);
}

TEST(Serializer, ParserVerifiesResult) {
  // Structurally parseable but semantically broken (stack underflow).
  const std::string text =
      "program name=x globals=0 entry=main\nmethod main args=0 locals=0 {\n  add\n  halt\n}\n";
  EXPECT_THROW(parse_program(text), Error);
}

TEST(Serializer, ErrorsCarryLineNumbers) {
  const std::string text =
      "program name=x globals=0 entry=main\nmethod main args=0 locals=0 {\n  zap\n}\n";
  try {
    parse_program(text);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace ith::bc
