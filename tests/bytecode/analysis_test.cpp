#include "bytecode/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bytecode/builder.hpp"
#include "testing.hpp"
#include "workloads/suite.hpp"

namespace ith::bc {
namespace {

// a -> b -> c, a -> c, plus unreachable d; c is a leaf.
Program diamond_program() {
  ProgramBuilder pb("diamond");
  pb.method("c", 1, 1).load(0).const_(1).add().ret();
  pb.method("b", 1, 1).load(0).call("c", 1).ret();
  pb.method("d", 1, 1).load(0).ret();  // never called
  auto& a = pb.method("main", 0, 0);
  a.const_(1).call("b", 1);
  a.const_(2).call("c", 1);
  a.add().halt();
  pb.entry("main");
  return pb.build();
}

TEST(CallGraph, EdgesAndMultiplicity) {
  const Program p = diamond_program();
  const CallGraph cg(p);
  const MethodId main = p.find_method("main"), b = p.find_method("b"), c = p.find_method("c");
  EXPECT_EQ(cg.callees(main), (std::vector<MethodId>{std::min(b, c), std::max(b, c)}));
  EXPECT_EQ(cg.callees(c), std::vector<MethodId>{});
  EXPECT_EQ(cg.callers(c), (std::vector<MethodId>{std::min(b, main), std::max(b, main)}));
  EXPECT_EQ(cg.multiplicity(main, b), 1u);
  EXPECT_EQ(cg.multiplicity(main, c), 1u);
  EXPECT_EQ(cg.multiplicity(b, main), 0u);
}

TEST(CallGraph, MultiplicityCountsRepeatSites) {
  ProgramBuilder pb("multi");
  pb.method("f", 1, 1).load(0).ret();
  auto& m = pb.method("main", 0, 0);
  m.const_(1).call("f", 1);
  m.const_(2).call("f", 1).add();
  m.const_(3).call("f", 1).add();
  m.halt();
  pb.entry("main");
  const Program p = pb.build();
  const CallGraph cg(p);
  EXPECT_EQ(cg.multiplicity(p.entry(), p.find_method("f")), 3u);
  EXPECT_EQ(cg.callees(p.entry()).size(), 1u) << "edges are collapsed";
}

TEST(CallGraph, ReachabilityExcludesDeadMethods) {
  const Program p = diamond_program();
  const CallGraph cg(p);
  const auto reach = cg.reachable_from_entry();
  EXPECT_EQ(reach.size(), 3u);
  for (MethodId m : reach) {
    EXPECT_NE(p.method(m).name(), "d");
  }
}

TEST(CallGraph, SccsSeparateAcyclicMethods) {
  const Program p = diamond_program();
  const CallGraph cg(p);
  const auto comps = cg.sccs();
  EXPECT_EQ(comps.size(), p.num_methods()) << "acyclic graph: singleton SCCs";
  for (const auto& c : comps) EXPECT_EQ(c.size(), 1u);
}

TEST(CallGraph, SelfRecursionDetected) {
  const Program p = ith::test::make_fib_program();
  const CallGraph cg(p);
  EXPECT_TRUE(cg.is_recursive(p.find_method("fib")));
  EXPECT_FALSE(cg.is_recursive(p.entry()));
}

TEST(CallGraph, MutualRecursionDetected) {
  ProgramBuilder pb("mutual");
  auto& even = pb.method("even", 1, 1);
  even.load(0).jz("yes");
  even.load(0).const_(1).sub().call("odd", 1).ret();
  even.label("yes").ret_const(1);
  auto& odd = pb.method("odd", 1, 1);
  odd.load(0).jz("no");
  odd.load(0).const_(1).sub().call("even", 1).ret();
  odd.label("no").ret_const(0);
  pb.method("main", 0, 0).const_(10).call("even", 1).halt();
  pb.entry("main");
  const Program p = pb.build();
  EXPECT_EQ(ith::test::run_exit_value(p), 1);

  const CallGraph cg(p);
  EXPECT_TRUE(cg.is_recursive(p.find_method("even")));
  EXPECT_TRUE(cg.is_recursive(p.find_method("odd")));
  EXPECT_FALSE(cg.is_recursive(p.entry()));
  // even & odd share one SCC.
  std::size_t big = 0;
  for (const auto& c : cg.sccs()) {
    if (c.size() == 2) ++big;
  }
  EXPECT_EQ(big, 1u);
}

TEST(CallGraph, MaxCallDepth) {
  const Program p = diamond_program();
  const CallGraph cg(p);
  EXPECT_EQ(cg.max_call_depth(), 3u);  // main -> b -> c
}

TEST(CallGraph, MaxCallDepthWithCycleCountsSccOnce) {
  const Program p = ith::test::make_fib_program();
  const CallGraph cg(p);
  EXPECT_EQ(cg.max_call_depth(), 2u);  // main -> {fib}
}

TEST(CallGraph, DotOutputMentionsEveryMethod) {
  const Program p = diamond_program();
  std::ostringstream os;
  CallGraph(p).to_dot(os);
  const std::string dot = os.str();
  for (const Method& m : p.methods()) {
    EXPECT_NE(dot.find(m.name()), std::string::npos) << m.name();
  }
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Metrics, CountsMatchHandComputation) {
  const Program p = diamond_program();
  const ProgramMetrics m = compute_metrics(p);
  EXPECT_EQ(m.num_methods, 4u);
  EXPECT_EQ(m.reachable_methods, 3u);
  EXPECT_EQ(m.call_sites, 3u);
  EXPECT_EQ(m.leaf_methods, 2u);  // c and d
  EXPECT_EQ(m.recursive_methods, 0u);
  EXPECT_EQ(m.max_call_depth, 3u);
  EXPECT_EQ(m.always_inline_band + m.conditional_band + m.too_big_band, m.num_methods);
  EXPECT_GT(m.estimated_words, 0u);
  EXPECT_GE(m.max_method_words, m.min_method_words);
}

TEST(Metrics, WorkloadsHaveCalibratedShape) {
  // The suites are engineered so a meaningful share of methods falls in the
  // default heuristic's "conditional" band — otherwise tuning CALLEE/DEPTH
  // would be a no-op (see EXPERIMENTS.md's calibration record).
  for (const char* name : {"jess", "antlr", "pseudojbb"}) {
    const ProgramMetrics m = compute_metrics(wl::make_workload(name).program);
    EXPECT_GT(m.conditional_band, m.num_methods / 10) << name;
    EXPECT_GT(m.too_big_band, 0u) << name;
  }
}

TEST(Metrics, ToStringContainsKeyNumbers) {
  const ProgramMetrics m = compute_metrics(diamond_program());
  const std::string s = metrics_to_string(m);
  EXPECT_NE(s.find("methods: 4"), std::string::npos) << s;
  EXPECT_NE(s.find("call sites: 3"), std::string::npos) << s;
}

}  // namespace
}  // namespace ith::bc
