#include "bytecode/binary.hpp"

#include <gtest/gtest.h>

#include "bytecode/serializer.hpp"
#include "support/error.hpp"
#include "testing.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace ith::bc {
namespace {

TEST(Binary, RoundTripsFixtures) {
  for (const Program& p : {ith::test::make_add_program(), ith::test::make_loop_program(),
                           ith::test::make_fib_program(), ith::test::make_globals_program()}) {
    EXPECT_EQ(from_binary(to_binary(p)), p);
  }
}

TEST(Binary, RoundTripsEveryWorkload) {
  for (const std::string& suite : {std::string("specjvm98"), std::string("dacapo+jbb")}) {
    for (const wl::Workload& w : wl::make_suite(suite)) {
      EXPECT_EQ(from_binary(to_binary(w.program)), w.program) << w.name;
    }
  }
}

TEST(Binary, RoundTripsRandomSyntheticPrograms) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    wl::SyntheticSpec spec;
    spec.seed = seed;
    spec.n_blobs = static_cast<int>(seed % 3);
    spec.n_recursive = 1;
    const Program p = wl::make_synthetic(spec);
    EXPECT_EQ(from_binary(to_binary(p)), p) << "seed " << seed;
  }
}

TEST(Binary, PreservesSemantics) {
  const Program p = ith::test::make_fib_program(11);
  EXPECT_EQ(ith::test::run_exit_value(from_binary(to_binary(p))),
            ith::test::run_exit_value(p));
}

TEST(Binary, SmallerThanText) {
  const Program p = wl::make_workload("antlr").program;
  EXPECT_LT(to_binary(p).size(), dump_program(p).size() / 2)
      << "the binary format should be much denser than the assembly text";
}

TEST(Binary, NegativeOperandsSurvive) {
  ProgramBuilder pb("neg");
  pb.method("main", 0, 0).const_(-123456).halt();
  pb.entry("main");
  const Program p = pb.build();
  EXPECT_EQ(from_binary(to_binary(p)), p);
  EXPECT_EQ(ith::test::run_exit_value(from_binary(to_binary(p))), -123456);
}

TEST(Binary, BadMagicRejected) {
  auto bytes = to_binary(ith::test::make_add_program());
  bytes[0] = 'X';
  EXPECT_THROW(from_binary(bytes), Error);
}

TEST(Binary, UnknownVersionRejected) {
  auto bytes = to_binary(ith::test::make_add_program());
  bytes[4] = 99;  // version varint
  EXPECT_THROW(from_binary(bytes), Error);
}

TEST(Binary, TruncationRejected) {
  const auto bytes = to_binary(ith::test::make_loop_program());
  for (std::size_t cut : {std::size_t{5}, std::size_t{12}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> shortened(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(from_binary(shortened), Error) << "cut at " << cut;
  }
}

TEST(Binary, CorruptOpcodeRejected) {
  auto bytes = to_binary(ith::test::make_add_program());
  // Flip every byte one at a time; the reader must never crash, only throw
  // or produce a program that still verifies (some flips hit string bytes).
  for (std::size_t i = 4; i < bytes.size(); ++i) {
    auto corrupted = bytes;
    corrupted[i] = static_cast<std::uint8_t>(corrupted[i] ^ 0xFF);
    try {
      const Program p = from_binary(corrupted);
      (void)p;  // parsed + verified: acceptable (the flip hit a name byte etc.)
    } catch (const Error&) {
      // expected for most positions
    }
  }
}

}  // namespace
}  // namespace ith::bc
