// Snapshot federation (merge_eval_snapshots): the deterministic total order
// that makes merging commutative and associative — any merge order of any
// snapshot set yields one canonical cache — plus the fingerprint gate and
// the stale-tmp sweep crashed saves rely on.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "resilience/budget.hpp"
#include "support/error.hpp"
#include "tuner/eval_cache.hpp"

namespace ith {
namespace {

constexpr std::uint64_t kFp = 0x1234abcdULL;

tuner::BenchmarkResult ok_result(const std::string& name, std::uint64_t cycles) {
  tuner::BenchmarkResult br;
  br.name = name;
  br.running_cycles = cycles;
  br.total_cycles = cycles + 100;
  br.compile_cycles = 100;
  return br;
}

tuner::BenchmarkResult failed_result(const std::string& name) {
  tuner::BenchmarkResult br;
  br.name = name;
  br.outcome = resilience::EvalOutcome::make_trap(resilience::TrapKind::kInjected, "boom");
  br.attempts = 0;
  return br;
}

tuner::EvalCacheSnapshot snapshot_with(
    std::initializer_list<std::pair<std::uint64_t, tuner::BenchmarkResult>> entries,
    std::initializer_list<std::uint64_t> quarantined = {}) {
  tuner::EvalCacheSnapshot snap;
  snap.fingerprint = kFp;
  for (const auto& [sig, result] : entries) snap.entries.push_back({sig, {result}});
  snap.quarantined = quarantined;
  return snap;
}

std::string canonical_bytes(const tuner::EvalCacheSnapshot& snap) {
  std::string out;
  for (const auto& e : snap.entries) {
    out += std::to_string(e.signature) + ":" + tuner::encode_results(e.results) + ";";
  }
  out += "|";
  for (std::uint64_t q : snap.quarantined) out += std::to_string(q) + ",";
  return out;
}

TEST(EvalCacheMerge, AddsDuplicatesAndConflictsAreCounted) {
  tuner::EvalCacheSnapshot dst =
      snapshot_with({{1, ok_result("compress", 10)}, {2, ok_result("compress", 20)}});
  const tuner::EvalCacheSnapshot src =
      snapshot_with({{2, ok_result("compress", 20)},   // identical -> duplicate
                     {3, ok_result("compress", 30)},   // new -> added
                     {1, ok_result("compress", 99)}},  // differs -> conflict
                    {7});

  const tuner::SnapshotMergeStats stats = tuner::merge_eval_snapshots(dst, src);
  EXPECT_EQ(stats.added, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.conflicts, 1u);
  ASSERT_EQ(dst.entries.size(), 3u);
  // Entries come out sorted by signature; quarantine is unioned.
  EXPECT_EQ(dst.entries[0].signature, 1u);
  EXPECT_EQ(dst.entries[1].signature, 2u);
  EXPECT_EQ(dst.entries[2].signature, 3u);
  EXPECT_EQ(dst.quarantined, (std::vector<std::uint64_t>{7}));
}

TEST(EvalCacheMerge, ConflictResolvedByFewestFailuresThenBytes) {
  // A conflicting entry with a failed benchmark loses to an all-ok one, in
  // either merge direction.
  const tuner::EvalCacheSnapshot good = snapshot_with({{1, ok_result("db", 50)}});
  const tuner::EvalCacheSnapshot bad = snapshot_with({{1, failed_result("db")}}, {1});

  tuner::EvalCacheSnapshot a = good;
  tuner::merge_eval_snapshots(a, bad);
  ASSERT_EQ(a.entries.size(), 1u);
  EXPECT_TRUE(a.entries[0].results[0].outcome.ok());

  tuner::EvalCacheSnapshot b = bad;
  tuner::merge_eval_snapshots(b, good);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_TRUE(b.entries[0].results[0].outcome.ok());
  // The quarantine is sticky (a union): the failure was observed somewhere.
  EXPECT_EQ(b.quarantined, (std::vector<std::uint64_t>{1}));
}

TEST(EvalCacheMerge, CommutativeAndAssociative) {
  const tuner::EvalCacheSnapshot s1 =
      snapshot_with({{1, ok_result("compress", 10)}, {2, failed_result("db")}}, {2});
  const tuner::EvalCacheSnapshot s2 =
      snapshot_with({{2, ok_result("db", 20)}, {3, ok_result("jess", 30)}}, {9});
  const tuner::EvalCacheSnapshot s3 =
      snapshot_with({{1, ok_result("compress", 11)}, {4, ok_result("mtrt", 40)}});

  // (s1 + s2) + s3  ==  s3 + (s2 + s1)  ==  (s1 + s3) + s2
  tuner::EvalCacheSnapshot left = s1;
  tuner::merge_eval_snapshots(left, s2);
  tuner::merge_eval_snapshots(left, s3);

  tuner::EvalCacheSnapshot right = s2;
  tuner::merge_eval_snapshots(right, s1);
  tuner::EvalCacheSnapshot outer = s3;
  tuner::merge_eval_snapshots(outer, right);

  tuner::EvalCacheSnapshot mixed = s1;
  tuner::merge_eval_snapshots(mixed, s3);
  tuner::merge_eval_snapshots(mixed, s2);

  EXPECT_EQ(canonical_bytes(left), canonical_bytes(outer));
  EXPECT_EQ(canonical_bytes(left), canonical_bytes(mixed));
}

TEST(EvalCacheMerge, SelfMergeIsIdentity) {
  const tuner::EvalCacheSnapshot snap =
      snapshot_with({{1, ok_result("compress", 10)}, {2, failed_result("db")}}, {2});
  tuner::EvalCacheSnapshot dst = snap;
  const tuner::SnapshotMergeStats stats = tuner::merge_eval_snapshots(dst, snap);
  EXPECT_EQ(stats.added, 0u);
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(canonical_bytes(dst), canonical_bytes(snap));
}

TEST(EvalCacheMerge, FingerprintMismatchRejected) {
  tuner::EvalCacheSnapshot dst = snapshot_with({{1, ok_result("compress", 10)}});
  tuner::EvalCacheSnapshot src = snapshot_with({{2, ok_result("db", 20)}});
  src.fingerprint = kFp ^ 1;
  EXPECT_THROW(tuner::merge_eval_snapshots(dst, src), Error);
}

class StaleTmp : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "eval_cache_merge_test.bin";
    std::remove(path_.c_str());
    std::remove(tmp().c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(tmp().c_str());
  }
  std::string tmp() const { return path_ + ".tmp"; }
  void plant_tmp() const {
    std::ofstream out(tmp(), std::ios::binary);
    out << "half-written garbage from a crashed save";
  }
  bool tmp_exists() const { return std::ifstream(tmp()).good(); }

  std::string path_;
};

TEST_F(StaleTmp, SweepRemovesLeftoverAndReportsIt) {
  EXPECT_FALSE(tuner::remove_stale_eval_cache_tmp(path_));  // nothing there
  plant_tmp();
  EXPECT_TRUE(tuner::remove_stale_eval_cache_tmp(path_));
  EXPECT_FALSE(tmp_exists());
}

TEST_F(StaleTmp, LoadSweepsStaleTmpBesidePublishedFile) {
  tuner::save_eval_cache(path_, snapshot_with({{1, ok_result("compress", 10)}}));
  plant_tmp();  // a save that died between write and rename
  const tuner::EvalCacheSnapshot loaded = tuner::load_eval_cache(path_);
  EXPECT_EQ(loaded.entries.size(), 1u);  // the published file is whole
  EXPECT_FALSE(tmp_exists()) << "load_eval_cache must sweep the stale tmp";
}

TEST_F(StaleTmp, SaveAfterSweepPublishesAtomically) {
  plant_tmp();
  tuner::remove_stale_eval_cache_tmp(path_);
  const tuner::EvalCacheSnapshot snap =
      snapshot_with({{1, ok_result("compress", 10)}}, {5});
  tuner::save_eval_cache(path_, snap);
  EXPECT_FALSE(tmp_exists());  // rename consumed the tmp
  const tuner::EvalCacheSnapshot loaded = tuner::load_eval_cache(path_);
  EXPECT_EQ(canonical_bytes(loaded), canonical_bytes(snap));
}

}  // namespace
}  // namespace ith
