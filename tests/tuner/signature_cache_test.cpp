// Two-level signature cache, end to end: a warm tuning run restored from a
// cold run's snapshot must reproduce the identical winner without a single
// real suite execution, aliased parameter vectors must share one cache slot
// (and one quarantine verdict), and the collapse statistics must add up.
#include <vector>

#include <gtest/gtest.h>

#include "ga/ga.hpp"
#include "heuristics/inline_params.hpp"
#include "resilience/fault.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/tuner.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

tuner::SuiteEvaluator make_evaluator(const resilience::FaultPlan* plan = nullptr) {
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = 2;
  config.max_retries = 1;
  config.vm_config.faults = plan;
  return tuner::SuiteEvaluator(std::move(suite), config);
}

ga::GaConfig small_ga_config() {
  ga::GaConfig config;
  config.population = 6;
  config.generations = 3;
  config.seed = 21;
  return config;
}

// The property the persistent cache exists for: restore a cold run's
// snapshot into a fresh evaluator, re-run the same tune, and the GA must
// land on the bit-identical winner while the evaluator performs *zero* real
// suite executions — every signature it asks for is already cached
// (including the default-params baseline the fitness normalizes against).
TEST(SignatureCache, WarmTuneMatchesColdWithZeroRealEvaluations) {
  const ga::GaConfig config = small_ga_config();

  tuner::SuiteEvaluator cold = make_evaluator();
  const tuner::TuneResult want = tuner::tune(cold, tuner::Goal::kTotal, config, {});
  ASSERT_GT(cold.evaluations_performed(), 0u);

  tuner::SuiteEvaluator warm = make_evaluator();
  warm.restore(cold.snapshot());
  const tuner::TuneResult got = tuner::tune(warm, tuner::Goal::kTotal, config, {});

  EXPECT_EQ(warm.evaluations_performed(), 0u);
  EXPECT_EQ(got.best.to_array(), want.best.to_array());
  EXPECT_EQ(got.best_fitness, want.best_fitness);
  EXPECT_EQ(got.ga.best, want.ga.best);
  ASSERT_EQ(got.ga.history.size(), want.ga.history.size());
  for (std::size_t i = 0; i < want.ga.history.size(); ++i) {
    EXPECT_EQ(got.ga.history[i].best, want.ga.history[i].best);
    EXPECT_EQ(got.ga.history[i].best_genome, want.ga.history[i].best_genome);
  }

  // Collapse bookkeeping: the GA probed at least as many param vectors as
  // there are signatures, and every distinct signature got exactly one run.
  EXPECT_GE(cold.params_seen(), cold.signatures_seen());
  EXPECT_EQ(cold.evaluations_performed(), cold.cache_size());
}

// Regression for quarantine keyed on raw params: two aliased genomes whose
// shared signature fails persistently must produce ONE quarantine entry,
// and the second genome must short-circuit to the penalized verdict without
// ever re-running the failing suite.
TEST(SignatureCache, AliasedFailingParamsShareOneQuarantineEntry) {
  heur::InlineParams a = heur::default_params();
  heur::InlineParams b = a;
  b.max_inline_depth += 1;  // deeper than db's call graph: decisions unchanged

  // The alias must actually hold or this test degenerates; assert it with a
  // fault-free evaluator (the signature ignores the fault plan).
  {
    tuner::SuiteEvaluator probe = make_evaluator();
    ASSERT_EQ(probe.signature_of(a), probe.signature_of(b));
  }

  resilience::FaultPlan plan;
  plan.rate = 1.0;  // every attempt faults — the signature is doomed
  plan.seed = 1;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kEvaluator);
  tuner::SuiteEvaluator eval = make_evaluator(&plan);

  const tuner::SuiteEvaluator::Results first = eval.evaluate(a);
  EXPECT_FALSE((*first)[0].outcome.ok());
  EXPECT_GT((*first)[0].attempts, 0);
  ASSERT_EQ(eval.quarantined_keys().size(), 1u);
  EXPECT_EQ(eval.evaluations_performed(), 1u);

  // The aliased genome hits the cached penalized result — same pointer, no
  // new run, still exactly one quarantine entry.
  const tuner::SuiteEvaluator::Results second = eval.evaluate(b);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(eval.evaluations_performed(), 1u);
  EXPECT_EQ(eval.quarantined_keys().size(), 1u);

  // And a fresh evaluator that only preloads the quarantine (the resume
  // path) short-circuits genome b without ever having seen genome a.
  tuner::SuiteEvaluator resumed = make_evaluator(&plan);
  resumed.preload_quarantine(eval.quarantined_keys());
  const tuner::SuiteEvaluator::Results shortcut = resumed.evaluate(b);
  EXPECT_EQ((*shortcut)[0].attempts, 0);
  EXPECT_EQ((*shortcut)[0].outcome.detail, "quarantined");
  EXPECT_EQ(resumed.evaluations_performed(), 0u);
}

// The quarantine snapshot/restore path used by GA checkpoints widens each
// 64-bit signature into two ints; entries with any other arity come from
// pre-signature checkpoints and must be dropped, not misread.
TEST(SignatureCache, PreloadIgnoresForeignQuarantineArity) {
  tuner::SuiteEvaluator eval = make_evaluator();
  eval.preload_quarantine({{1, 2, 3, 4, 5}, {7}, {}});  // old param-keyed shapes
  EXPECT_TRUE(eval.quarantined_keys().empty());

  const std::uint64_t sig = 0xdeadbeefcafef00dULL;
  const std::vector<int> widened = {static_cast<int>(static_cast<std::uint32_t>(sig)),
                                    static_cast<int>(static_cast<std::uint32_t>(sig >> 32))};
  eval.preload_quarantine({widened});
  const auto keys = eval.quarantined_keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], widened);
}

}  // namespace
}  // namespace ith
