// Guarded evaluation in the SuiteEvaluator: failures become penalized (but
// finite) fitness, transient faults are retried, persistent offenders are
// quarantined, and a preloaded quarantine short-circuits without running.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/inline_params.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fitness.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

heur::InlineParams candidate_params() {
  heur::InlineParams p = heur::default_params();
  // The cache is keyed by decision signature, so merely tweaking a param is
  // not enough to get a fresh cache slot — the *decisions* must change.
  // Refusing every callee is guaranteed to differ from the defaults.
  p.callee_max_size = 0;
  p.always_inline_size = 0;
  return p;
}

tuner::SuiteEvaluator make_evaluator(const resilience::FaultPlan* plan, int retries) {
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = 2;
  config.max_retries = retries;
  config.vm_config.faults = plan;
  return tuner::SuiteEvaluator(std::move(suite), config);
}

TEST(GuardedEvaluation, PersistentFaultYieldsPenaltyAndQuarantine) {
  resilience::FaultPlan plan;
  plan.rate = 1.0;  // every attempt faults — retries cannot save this genome
  plan.seed = 1;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kEvaluator);
  tuner::SuiteEvaluator eval = make_evaluator(&plan, /*retries=*/2);

  const tuner::SuiteEvaluator::Results baseline = eval.default_results();
  ASSERT_TRUE((*baseline)[0].outcome.ok());  // baseline always fault-suppressed

  const heur::InlineParams params = candidate_params();
  const tuner::SuiteEvaluator::Results results = eval.evaluate(params);
  ASSERT_EQ(results->size(), 1u);
  const tuner::BenchmarkResult& br = (*results)[0];
  EXPECT_EQ(br.outcome.kind, resilience::OutcomeKind::kTrap);
  EXPECT_EQ(br.outcome.trap, resilience::TrapKind::kInjected);
  EXPECT_EQ(br.attempts, 3);  // 1 try + 2 retries, all faulted
  EXPECT_EQ(br.total_cycles, 0u);

  // Fitness is the penalty constant: finite, decisively worse than any real
  // measurement, never NaN/inf, never a throw.
  EXPECT_EQ(tuner::benchmark_metric(tuner::Goal::kTotal, br, (*baseline)[0]),
            tuner::kFailurePenalty);
  EXPECT_DOUBLE_EQ(tuner::suite_fitness(tuner::Goal::kTotal, *results, *baseline),
                   tuner::kFailurePenalty);

  const std::vector<std::vector<int>> quarantined = eval.quarantined_keys();
  ASSERT_EQ(quarantined.size(), 1u);

  // A fresh evaluator preloaded with that quarantine (the resume path)
  // short-circuits: no run, zero attempts, penalized outcome.
  tuner::SuiteEvaluator resumed = make_evaluator(&plan, /*retries=*/2);
  resumed.preload_quarantine(quarantined);
  const tuner::SuiteEvaluator::Results shortcut = resumed.evaluate(params);
  EXPECT_EQ((*shortcut)[0].attempts, 0);
  EXPECT_FALSE((*shortcut)[0].outcome.ok());
  EXPECT_EQ((*shortcut)[0].outcome.detail, "quarantined");
  EXPECT_EQ(resumed.evaluations_performed(), 0u);
}

TEST(GuardedEvaluation, TransientFaultIsRetriedToSuccess) {
  const heur::InlineParams params = candidate_params();
  // Replicate the evaluator's fault-key derivation and pick a plan seed for
  // which attempt 0 faults and attempt 1 does not — the retry must clear it.
  // The salt is the decision signature (not the raw params), so that
  // signature-aliased params draw identical faults; the signature ignores
  // the fault plan, so a fault-free evaluator can compute it up front.
  const std::uint64_t salt = make_evaluator(nullptr, /*retries=*/0).signature_of(params);
  const std::uint64_t key0 =
      resilience::mix_keys(salt, resilience::mix_keys(resilience::hash_string("db"), 0));
  const std::uint64_t key1 =
      resilience::mix_keys(salt, resilience::mix_keys(resilience::hash_string("db"), 1));

  resilience::FaultPlan plan;
  plan.rate = 0.5;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kEvaluator);
  for (plan.seed = 1; plan.seed < 10000; ++plan.seed) {
    if (plan.should_inject(resilience::FaultSite::kEvaluator, key0) &&
        !plan.should_inject(resilience::FaultSite::kEvaluator, key1)) {
      break;
    }
  }
  ASSERT_LT(plan.seed, 10000u) << "no seed found (key derivation changed?)";

  tuner::SuiteEvaluator eval = make_evaluator(&plan, /*retries=*/2);
  const tuner::SuiteEvaluator::Results results = eval.evaluate(params);
  const tuner::BenchmarkResult& br = (*results)[0];
  EXPECT_TRUE(br.outcome.ok());
  EXPECT_EQ(br.attempts, 2);  // first attempt faulted, retry succeeded
  EXPECT_GT(br.total_cycles, 0u);
  EXPECT_TRUE(eval.quarantined_keys().empty());

  // Recovered measurements are bit-identical to a fault-free evaluation.
  tuner::SuiteEvaluator clean = make_evaluator(nullptr, /*retries=*/2);
  const tuner::SuiteEvaluator::Results want = clean.evaluate(params);
  EXPECT_EQ(br.total_cycles, (*want)[0].total_cycles);
  EXPECT_EQ(br.running_cycles, (*want)[0].running_cycles);
  EXPECT_EQ(br.compile_cycles, (*want)[0].compile_cycles);
}

TEST(GuardedEvaluation, BudgetFailureNoLongerThrows) {
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = 1;
  config.vm_config.budget.max_instructions = 100;  // guaranteed to trip
  tuner::SuiteEvaluator eval(std::move(suite), config);

  const tuner::SuiteEvaluator::Results results = eval.evaluate(candidate_params());
  const tuner::BenchmarkResult& br = (*results)[0];
  EXPECT_EQ(br.outcome.kind, resilience::OutcomeKind::kBudgetExceeded);
  EXPECT_EQ(br.outcome.budget, resilience::BudgetKind::kInstructions);
  EXPECT_EQ(br.attempts, 1);  // deterministic sim-domain failure: no retry
  EXPECT_EQ(eval.quarantined_keys().size(), 1u);
}

}  // namespace
}  // namespace ith
