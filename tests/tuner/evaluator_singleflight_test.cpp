// SuiteEvaluator cache single-flighting: concurrent GA threads asking for
// the same uncached InlineParams must trigger exactly one full-suite
// evaluation — the rest block and share the cached result.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/inline_params.hpp"
#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "support/error.hpp"
#include "tuner/evaluator.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

tuner::SuiteEvaluator make_small_evaluator() {
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = 2;
  return tuner::SuiteEvaluator(std::move(suite), config);
}

TEST(SuiteEvaluatorSingleFlight, ConcurrentSameKeyEvaluatesOnce) {
  tuner::SuiteEvaluator eval = make_small_evaluator();
  const heur::InlineParams params = heur::default_params();
  constexpr int kThreads = 8;
  std::vector<tuner::SuiteEvaluator::Results> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] = eval.evaluate(params); });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(eval.evaluations_performed(), 1u);
  EXPECT_EQ(eval.cache_size(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    // Memoized: every caller shares ownership of the same cached vector.
    EXPECT_EQ(results[static_cast<std::size_t>(t)].get(), results[0].get());
  }
  ASSERT_NE(results[0], nullptr);
  EXPECT_EQ((*results[0])[0].name, "db");

  // A later call is a pure cache hit.
  eval.evaluate(params);
  EXPECT_EQ(eval.evaluations_performed(), 1u);
}

TEST(SuiteEvaluatorSingleFlight, DistinctSignaturesEvaluateIndependently) {
  tuner::SuiteEvaluator eval = make_small_evaluator();
  heur::InlineParams a = heur::default_params();
  heur::InlineParams b = heur::default_params();
  // Params that imply different inline decisions (refuse everything) — a
  // mere numeric tweak would collapse onto a's decision signature and share
  // its cache slot.
  b.callee_max_size = 0;
  b.always_inline_size = 0;
  ASSERT_NE(eval.signature_of(a), eval.signature_of(b));
  std::thread ta([&] { eval.evaluate(a); });
  std::thread tb([&] { eval.evaluate(b); });
  ta.join();
  tb.join();
  EXPECT_EQ(eval.evaluations_performed(), 2u);
  EXPECT_EQ(eval.cache_size(), 2u);
}

TEST(SuiteEvaluatorSingleFlight, AliasedParamsCollapseOntoOneEvaluation) {
  tuner::SuiteEvaluator eval = make_small_evaluator();
  heur::InlineParams a = heur::default_params();
  heur::InlineParams b = heur::default_params();
  // Raising a cap that is not the binding constraint changes no decision, so
  // both params map to one signature and the second call is a pure hit.
  b.max_inline_depth += 1;
  ASSERT_EQ(eval.signature_of(a), eval.signature_of(b));
  const tuner::SuiteEvaluator::Results ra = eval.evaluate(a);
  const tuner::SuiteEvaluator::Results rb = eval.evaluate(b);
  EXPECT_EQ(ra.get(), rb.get());  // pointer-identical shared results
  EXPECT_EQ(eval.evaluations_performed(), 1u);
  EXPECT_EQ(eval.cache_size(), 1u);
  EXPECT_EQ(eval.params_seen(), 2u);
  EXPECT_EQ(eval.signatures_seen(), 1u);
}

// Benchmark failures are guarded now (they become penalized results, not
// exceptions), so the remaining way an exception can escape evaluate() while
// the key is in flight is the observability path itself — e.g. a trace sink
// whose disk is gone. That exit must release the in-flight key too, or
// every later caller of the same params deadlocks on a result that will
// never arrive.
class ThrowOnceSink final : public obs::TraceSink {
 public:
  void write(const obs::Event&) override {
    if (armed_) {
      armed_ = false;
      throw Error("trace disk vanished");
    }
  }

 private:
  bool armed_ = true;
};

TEST(SuiteEvaluatorSingleFlight, ExceptionReleasesInFlightKey) {
  ThrowOnceSink sink;
  obs::Context ctx(&sink);
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = 1;
  config.obs = &ctx;
  tuner::SuiteEvaluator eval(std::move(suite), config);
  const heur::InlineParams params = heur::default_params();
  EXPECT_THROW(eval.evaluate(params), Error);  // sink throws mid-evaluation
  EXPECT_EQ(eval.cache_size(), 0u);

  // The key was released, so the next caller simply becomes the new owner
  // and (with the sink now quiet) completes and caches the result.
  const tuner::SuiteEvaluator::Results results = eval.evaluate(params);
  ASSERT_NE(results, nullptr);
  EXPECT_TRUE((*results)[0].outcome.ok());
  EXPECT_EQ(eval.cache_size(), 1u);
}

}  // namespace
}  // namespace ith
