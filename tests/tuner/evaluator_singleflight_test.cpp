// SuiteEvaluator cache single-flighting: concurrent GA threads asking for
// the same uncached InlineParams must trigger exactly one full-suite
// evaluation — the rest block and share the cached result.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/inline_params.hpp"
#include "support/error.hpp"
#include "tuner/evaluator.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

tuner::SuiteEvaluator make_small_evaluator() {
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = 2;
  return tuner::SuiteEvaluator(std::move(suite), config);
}

TEST(SuiteEvaluatorSingleFlight, ConcurrentSameKeyEvaluatesOnce) {
  tuner::SuiteEvaluator eval = make_small_evaluator();
  const heur::InlineParams params = heur::default_params();
  constexpr int kThreads = 8;
  std::vector<tuner::SuiteEvaluator::Results> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] = eval.evaluate(params); });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(eval.evaluations_performed(), 1u);
  EXPECT_EQ(eval.cache_size(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    // Memoized: every caller shares ownership of the same cached vector.
    EXPECT_EQ(results[static_cast<std::size_t>(t)].get(), results[0].get());
  }
  ASSERT_NE(results[0], nullptr);
  EXPECT_EQ((*results[0])[0].name, "db");

  // A later call is a pure cache hit.
  eval.evaluate(params);
  EXPECT_EQ(eval.evaluations_performed(), 1u);
}

TEST(SuiteEvaluatorSingleFlight, DistinctKeysEvaluateIndependently) {
  tuner::SuiteEvaluator eval = make_small_evaluator();
  heur::InlineParams a = heur::default_params();
  heur::InlineParams b = heur::default_params();
  b.max_inline_depth += 1;
  std::thread ta([&] { eval.evaluate(a); });
  std::thread tb([&] { eval.evaluate(b); });
  ta.join();
  tb.join();
  EXPECT_EQ(eval.evaluations_performed(), 2u);
  EXPECT_EQ(eval.cache_size(), 2u);
}

// A throwing evaluation must not leave its key stuck in the in-flight set:
// the next caller becomes the new owner (and throws again) instead of
// deadlocking on a result that will never arrive.
TEST(SuiteEvaluatorSingleFlight, ExceptionReleasesInFlightKey) {
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = 1;
  config.vm_config.interp_options.max_instructions = 100;  // guaranteed trap
  tuner::SuiteEvaluator eval(std::move(suite), config);
  const heur::InlineParams params = heur::default_params();
  EXPECT_THROW(eval.evaluate(params), Error);
  EXPECT_THROW(eval.evaluate(params), Error);  // retried, not deadlocked
  EXPECT_EQ(eval.cache_size(), 0u);
}

}  // namespace
}  // namespace ith
