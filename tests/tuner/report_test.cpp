// report.cpp unit tests: compare_results ratio math and error paths,
// average_row, and the CSV emitted for replotting the paper's figures.
#include "tuner/report.hpp"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace ith::tuner {
namespace {

BenchmarkResult bench(const std::string& name, std::uint64_t running, std::uint64_t total) {
  BenchmarkResult r;
  r.name = name;
  r.running_cycles = running;
  r.total_cycles = total;
  return r;
}

TEST(Report, CompareResultsComputesPerBenchmarkRatios) {
  const std::vector<BenchmarkResult> candidate = {bench("compress", 50, 150),
                                                  bench("db", 300, 300)};
  const std::vector<BenchmarkResult> baseline = {bench("compress", 100, 200),
                                                 bench("db", 200, 400)};
  const std::vector<ComparisonRow> rows = compare_results(candidate, baseline);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "compress");
  EXPECT_DOUBLE_EQ(rows[0].running_ratio, 0.5);
  EXPECT_DOUBLE_EQ(rows[0].total_ratio, 0.75);
  EXPECT_DOUBLE_EQ(rows[1].running_ratio, 1.5);
  EXPECT_DOUBLE_EQ(rows[1].total_ratio, 0.75);
}

TEST(Report, CompareResultsRejectsMismatchedSizes) {
  const std::vector<BenchmarkResult> one = {bench("a", 1, 1)};
  const std::vector<BenchmarkResult> two = {bench("a", 1, 1), bench("b", 1, 1)};
  EXPECT_THROW(compare_results(one, two), Error);
}

TEST(Report, CompareResultsRejectsEmptyVectors) {
  EXPECT_THROW(compare_results({}, {}), Error);
}

TEST(Report, CompareResultsRejectsBenchmarkOrderMismatch) {
  const std::vector<BenchmarkResult> candidate = {bench("a", 1, 1), bench("b", 1, 1)};
  const std::vector<BenchmarkResult> baseline = {bench("b", 1, 1), bench("a", 1, 1)};
  EXPECT_THROW(compare_results(candidate, baseline), Error);
}

TEST(Report, CompareResultsRejectsZeroBaseline) {
  const std::vector<BenchmarkResult> candidate = {bench("a", 1, 1)};
  EXPECT_THROW(compare_results(candidate, {bench("a", 0, 1)}), Error);
  EXPECT_THROW(compare_results(candidate, {bench("a", 1, 0)}), Error);
  // A zero *candidate* is fine (ratio 0): only the denominator is checked.
  const std::vector<ComparisonRow> rows = compare_results({bench("a", 0, 1)}, {bench("a", 4, 2)});
  EXPECT_DOUBLE_EQ(rows[0].running_ratio, 0.0);
}

TEST(Report, AverageRowIsArithmeticMeanOfRatios) {
  const std::vector<ComparisonRow> rows = {{"a", 0.5, 1.0}, {"b", 1.0, 0.5}, {"c", 1.5, 0.0}};
  const ComparisonRow avg = average_row(rows);
  EXPECT_EQ(avg.name, "average");
  EXPECT_DOUBLE_EQ(avg.running_ratio, 1.0);
  EXPECT_DOUBLE_EQ(avg.total_ratio, 0.5);
}

TEST(Report, AverageRowRejectsEmptyInput) { EXPECT_THROW(average_row({}), Error); }

TEST(Report, CsvGolden) {
  const std::vector<ComparisonRow> rows = {{"compress", 0.5, 0.75}, {"db", 1.5, 0.75}};
  std::ostringstream os;
  write_comparison_csv(os, rows);
  EXPECT_EQ(os.str(),
            "benchmark,running_norm,total_norm\n"
            "compress,0.500000,0.750000\n"
            "db,1.500000,0.750000\n"
            "average,1.000000,0.750000\n");
}

TEST(Report, ComparisonTableEndsWithAverageRow) {
  const std::vector<ComparisonRow> rows = {{"compress", 0.8, 0.9}};
  std::ostringstream os;
  comparison_table(rows).render(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("compress"), std::string::npos);
  EXPECT_NE(text.find("average"), std::string::npos);
}

}  // namespace
}  // namespace ith::tuner
