// Tuner tests: genome<->parameter mapping, the paper's fitness formulas,
// suite evaluation + memoization, comparison reports, and a small
// end-to-end tuning run that must beat the default heuristic.
#include "tuner/tuner.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/report.hpp"

namespace ith::tuner {
namespace {

std::vector<wl::Workload> tiny_suite() {
  return {wl::make_workload("compress"), wl::make_workload("raytrace")};
}

// --- parameter space ------------------------------------------------------------

TEST(ParameterSpace, AdaptHasFiveGenesOptFour) {
  EXPECT_EQ(inline_param_space(true).size(), 5u);
  EXPECT_EQ(inline_param_space(false).size(), 4u);
}

TEST(ParameterSpace, GenomeRoundTrip) {
  heur::InlineParams p = heur::default_params();
  p.callee_max_size = 49;
  p.hot_callee_max_size = 352;
  EXPECT_EQ(params_from_genome(genome_from_params(p, true)), p);
  // Four-gene genomes keep the default hot size.
  const heur::InlineParams q = params_from_genome(genome_from_params(p, false));
  EXPECT_EQ(q.callee_max_size, 49);
  EXPECT_EQ(q.hot_callee_max_size, heur::default_params().hot_callee_max_size);
}

TEST(ParameterSpace, RejectsWrongArity) {
  EXPECT_THROW(params_from_genome({1, 2, 3}), Error);
  EXPECT_THROW(params_from_genome({1, 2, 3, 4, 5, 6, 7}), Error);
}

TEST(ParameterSpace, SixthGeneDecodesPartialHeadSize) {
  const heur::InlineParams p = params_from_genome({23, 5, 5, 2048, 135, 12});
  EXPECT_EQ(p.hot_callee_max_size, 135);
  EXPECT_EQ(p.partial_max_head_size, 12);

  const ga::GenomeSpace s = inline_param_space(true, true);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s.gene(5).name, "PARTIAL_MAX_HEAD_SIZE");
  EXPECT_EQ(s.gene(5).lo, 0);

  heur::InlineParams q = heur::default_params();
  q.partial_max_head_size = 9;
  const ga::Genome g = genome_from_params(q, true, true);
  ASSERT_EQ(g.size(), 6u);
  EXPECT_EQ(params_from_genome(g), q);

  // Positional encoding: the partial gene cannot exist without the hot gene.
  EXPECT_THROW(inline_param_space(false, true), Error);
}

TEST(ParameterSpace, RangesMatchTable1) {
  const ga::GenomeSpace s = inline_param_space(true);
  EXPECT_EQ(s.gene(0).name, "CALLEE_MAX_SIZE");
  EXPECT_EQ(s.gene(0).hi, 50);
  EXPECT_EQ(s.gene(4).name, "HOT_CALLEE_MAX_SIZE");
  EXPECT_EQ(s.gene(4).hi, 400);
}

// --- fitness -----------------------------------------------------------------------

BenchmarkResult br(const std::string& name, std::uint64_t running, std::uint64_t total) {
  return BenchmarkResult{name, running, total, total - running};
}

TEST(Fitness, RunningAndTotalAreNormalizedRatios) {
  const BenchmarkResult dflt = br("x", 100, 200);
  EXPECT_DOUBLE_EQ(benchmark_metric(Goal::kRunning, br("x", 80, 300), dflt), 0.8);
  EXPECT_DOUBLE_EQ(benchmark_metric(Goal::kTotal, br("x", 500, 100), dflt), 0.5);
}

TEST(Fitness, BalanceMatchesPaperFormula) {
  // factor = Total_def / Running_def = 2; metric = (2*Running + Total) / (2*Total_def).
  const BenchmarkResult dflt = br("x", 100, 200);
  const BenchmarkResult cand = br("x", 90, 150);
  EXPECT_DOUBLE_EQ(benchmark_metric(Goal::kBalance, cand, dflt), (2.0 * 90 + 150) / 400.0);
}

TEST(Fitness, BalanceOfDefaultIsOne) {
  const BenchmarkResult dflt = br("x", 123, 456);
  EXPECT_DOUBLE_EQ(benchmark_metric(Goal::kBalance, dflt, dflt), 1.0);
}

TEST(Fitness, SuiteFitnessIsGeomean) {
  const std::vector<BenchmarkResult> dflt = {br("a", 100, 100), br("b", 100, 100)};
  const std::vector<BenchmarkResult> cand = {br("a", 50, 100), br("b", 200, 100)};
  EXPECT_DOUBLE_EQ(suite_fitness(Goal::kRunning, cand, dflt), 1.0);  // sqrt(0.5 * 2)
}

TEST(Fitness, MismatchedSuitesRejected) {
  const std::vector<BenchmarkResult> a = {br("a", 1, 1)};
  const std::vector<BenchmarkResult> b = {br("b", 1, 1)};
  EXPECT_THROW(suite_fitness(Goal::kRunning, a, b), Error);
}

TEST(Fitness, GoalNames) {
  EXPECT_STREQ(goal_name(Goal::kRunning), "running");
  EXPECT_STREQ(goal_name(Goal::kTotal), "total");
  EXPECT_STREQ(goal_name(Goal::kBalance), "balance");
}

// --- evaluator -----------------------------------------------------------------------

TEST(Evaluator, ProducesOneResultPerBenchmarkInOrder) {
  SuiteEvaluator eval(tiny_suite(), EvalConfig{});
  const auto& results = *eval.evaluate(heur::default_params());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "compress");
  EXPECT_EQ(results[1].name, "raytrace");
  EXPECT_GT(results[0].running_cycles, 0u);
  EXPECT_GE(results[0].total_cycles, results[0].running_cycles);
}

TEST(Evaluator, MemoizesByParams) {
  SuiteEvaluator eval(tiny_suite(), EvalConfig{});
  const auto first = eval.evaluate(heur::default_params());
  const auto again = eval.evaluate(heur::default_params());
  EXPECT_EQ(first.get(), again.get()) << "same params must return the cached vector";
  EXPECT_EQ(eval.cache_size(), 1u);
  heur::InlineParams other = heur::default_params();
  other.callee_max_size = 1;
  eval.evaluate(other);
  EXPECT_EQ(eval.cache_size(), 2u);
}

TEST(Evaluator, ScenarioConfigRespected) {
  EvalConfig cfg;
  cfg.scenario = vm::Scenario::kOpt;
  SuiteEvaluator opt_eval(tiny_suite(), cfg);
  cfg.scenario = vm::Scenario::kAdapt;
  SuiteEvaluator adapt_eval(tiny_suite(), cfg);
  const auto& opt = *opt_eval.evaluate(heur::default_params());
  const auto& adapt = *adapt_eval.evaluate(heur::default_params());
  EXPECT_NE(opt[0].total_cycles, adapt[0].total_cycles);
}

TEST(Evaluator, EmptySuiteRejected) {
  EXPECT_THROW(SuiteEvaluator({}, EvalConfig{}), Error);
}

TEST(Evaluator, HeuristicEvaluationNotMemoized) {
  SuiteEvaluator eval(tiny_suite(), EvalConfig{});
  heur::NeverInlineHeuristic never;
  const auto r = eval.evaluate_heuristic(never);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(eval.cache_size(), 0u);
}

// --- report --------------------------------------------------------------------------

TEST(Report, RatiosAndAverages) {
  const std::vector<BenchmarkResult> base = {br("a", 100, 200), br("b", 100, 200)};
  const std::vector<BenchmarkResult> cand = {br("a", 50, 100), br("b", 150, 300)};
  const auto rows = compare_results(cand, base);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].running_ratio, 0.5);
  EXPECT_DOUBLE_EQ(rows[1].total_ratio, 1.5);
  const ComparisonRow avg = average_row(rows);
  EXPECT_DOUBLE_EQ(avg.running_ratio, 1.0);
  EXPECT_DOUBLE_EQ(avg.total_ratio, 1.0);
}

TEST(Report, TableContainsAverageRow) {
  const std::vector<BenchmarkResult> base = {br("a", 100, 200)};
  const std::vector<BenchmarkResult> cand = {br("a", 80, 160)};
  const std::string s = comparison_table(compare_results(cand, base)).to_string();
  EXPECT_NE(s.find("average"), std::string::npos);
  EXPECT_NE(s.find("+20.0%"), std::string::npos);
}

TEST(Report, ZeroBaselineRejected) {
  const std::vector<BenchmarkResult> base = {br("a", 0, 200)};
  const std::vector<BenchmarkResult> cand = {br("a", 80, 160)};
  EXPECT_THROW(compare_results(cand, base), Error);
}

// --- end-to-end tuning -----------------------------------------------------------------

TEST(Tune, BeatsOrMatchesDefaultOnTrainingSuite) {
  EvalConfig cfg;
  cfg.scenario = vm::Scenario::kOpt;
  SuiteEvaluator eval(tiny_suite(), cfg);
  ga::GaConfig ga_cfg = default_ga_config(/*generations=*/8, /*seed=*/42);
  ga_cfg.population = 10;
  const TuneResult r = tune(eval, Goal::kTotal, ga_cfg);
  EXPECT_LE(r.best_fitness, 1.0) << "the default genome is reachable, so tuned can't be worse";
  // The workloads are calibrated so the Jikes defaults are close to locally
  // optimal on SPEC-like hot paths (as in the paper); even a small GA budget
  // must still find *some* total-time headroom (compile-time waste).
  EXPECT_LT(r.best_fitness, 0.995);
}

TEST(Tune, OptScenarioSearchesFourGenes) {
  EvalConfig cfg;
  cfg.scenario = vm::Scenario::kOpt;
  SuiteEvaluator eval(tiny_suite(), cfg);
  ga::GaConfig ga_cfg = default_ga_config(2, 1);
  ga_cfg.population = 4;
  const TuneResult r = tune(eval, Goal::kTotal, ga_cfg);
  EXPECT_EQ(r.ga.best.size(), 4u);
}

TEST(Tune, AdaptScenarioSearchesFiveGenes) {
  EvalConfig cfg;
  cfg.scenario = vm::Scenario::kAdapt;
  SuiteEvaluator eval(tiny_suite(), cfg);
  ga::GaConfig ga_cfg = default_ga_config(2, 1);
  ga_cfg.population = 4;
  const TuneResult r = tune(eval, Goal::kBalance, ga_cfg);
  EXPECT_EQ(r.ga.best.size(), 5u);
}

TEST(Tune, SixGeneSearchMatchesOrBeatsTheFiveGeneWinner) {
  // The sixth dimension strictly widens the space: seeding the six-gene
  // population with the five-gene winner (extended by its own partial value)
  // guarantees the GA can only hold or improve the fitness — the acceptance
  // bar for partial inlining as a tunable dimension.
  EvalConfig cfg;
  cfg.scenario = vm::Scenario::kAdapt;
  SuiteEvaluator eval5(tiny_suite(), cfg);
  ga::GaConfig ga5 = default_ga_config(/*generations=*/3, /*seed=*/7);
  ga5.population = 6;
  const TuneResult five = tune(eval5, Goal::kTotal, ga5);
  ASSERT_EQ(five.ga.best.size(), 5u);

  SuiteEvaluator eval6(tiny_suite(), cfg);
  ga::GaConfig ga6 = default_ga_config(/*generations=*/3, /*seed=*/7);
  ga6.population = 6;
  ga6.seed_individuals = {genome_from_params(five.best, /*include_hot_gene=*/true,
                                             /*include_partial_gene=*/true)};
  const TuneResult six = tune(eval6, Goal::kTotal, ga6, {}, /*include_partial_gene=*/true);
  EXPECT_EQ(six.ga.best.size(), 6u);
  EXPECT_LE(six.best_fitness, five.best_fitness + 1e-12);
}

TEST(Tune, DefaultGaConfigMatchesPaperPopulation) {
  const ga::GaConfig cfg = default_ga_config(40, 1);
  EXPECT_EQ(cfg.population, 20);  // the paper's population size
  EXPECT_TRUE(cfg.memoize);
}

}  // namespace
}  // namespace ith::tuner
