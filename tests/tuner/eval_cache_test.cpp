// Persistent evaluation cache (ITHEVC1): full-fidelity roundtrip through
// the binary format, distinct diagnostics for every corruption mode a
// crashed or copied file can exhibit, and the fingerprint gate that keeps a
// cache produced under one evaluator configuration from silently feeding
// results to a different one.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/inline_params.hpp"
#include "resilience/budget.hpp"
#include "support/error.hpp"
#include "tuner/eval_cache.hpp"
#include "tuner/evaluator.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

tuner::EvalCacheSnapshot sample_snapshot() {
  tuner::EvalCacheSnapshot snap;
  snap.fingerprint = 0xfeedfacecafebeefULL;

  tuner::EvalCacheSnapshot::Entry ok;
  ok.signature = 0x1111222233334444ULL;
  tuner::BenchmarkResult r1;
  r1.name = "db";
  r1.running_cycles = 123456789;
  r1.total_cycles = 234567890;
  r1.compile_cycles = 111111101;
  r1.attempts = 2;
  ok.results.push_back(r1);
  tuner::BenchmarkResult r2;
  r2.name = "compress";
  r2.running_cycles = 42;
  r2.total_cycles = 43;
  r2.compile_cycles = 1;
  ok.results.push_back(r2);
  snap.entries.push_back(ok);

  tuner::EvalCacheSnapshot::Entry failed;
  failed.signature = 0x5555666677778888ULL;
  tuner::BenchmarkResult rf;
  rf.name = "db";
  rf.outcome = resilience::EvalOutcome::make_trap(resilience::TrapKind::kInjected, "quarantined");
  rf.attempts = 0;
  failed.results.push_back(rf);
  snap.entries.push_back(failed);

  snap.quarantined = {0x5555666677778888ULL, 0x9999aaaabbbbccccULL};
  return snap;
}

class EvalCacheFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "eval_cache_test.bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  void dump(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  void expect_load_error(const char* needle) const {
    try {
      tuner::load_eval_cache(path_);
      FAIL() << "expected Error mentioning \"" << needle << "\"";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  }
  std::string path_;
};

TEST_F(EvalCacheFile, Roundtrip) {
  const tuner::EvalCacheSnapshot snap = sample_snapshot();
  tuner::save_eval_cache(path_, snap);
  const tuner::EvalCacheSnapshot got = tuner::load_eval_cache(path_);

  EXPECT_EQ(got.fingerprint, snap.fingerprint);
  EXPECT_EQ(got.quarantined, snap.quarantined);
  ASSERT_EQ(got.entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].signature, snap.entries[i].signature);
    ASSERT_EQ(got.entries[i].results.size(), snap.entries[i].results.size());
    for (std::size_t j = 0; j < snap.entries[i].results.size(); ++j) {
      const tuner::BenchmarkResult& want = snap.entries[i].results[j];
      const tuner::BenchmarkResult& have = got.entries[i].results[j];
      EXPECT_EQ(have.name, want.name);
      EXPECT_EQ(have.running_cycles, want.running_cycles);
      EXPECT_EQ(have.total_cycles, want.total_cycles);
      EXPECT_EQ(have.compile_cycles, want.compile_cycles);
      EXPECT_EQ(have.outcome.kind, want.outcome.kind);
      EXPECT_EQ(have.outcome.budget, want.outcome.budget);
      EXPECT_EQ(have.outcome.trap, want.outcome.trap);
      EXPECT_EQ(have.outcome.detail, want.outcome.detail);
      EXPECT_EQ(have.attempts, want.attempts);
    }
  }
}

TEST_F(EvalCacheFile, MissingFileRejected) { expect_load_error("cannot open"); }

TEST_F(EvalCacheFile, BadMagicRejected) {
  dump("this is a perfectly ordinary text file, not an evaluation cache at all");
  expect_load_error("bad magic");
}

TEST_F(EvalCacheFile, HeaderTruncationRejected) {
  tuner::save_eval_cache(path_, sample_snapshot());
  dump(slurp().substr(0, 12));  // magic survives, sizes do not
  expect_load_error("truncated");
}

TEST_F(EvalCacheFile, PayloadTruncationRejected) {
  tuner::save_eval_cache(path_, sample_snapshot());
  const std::string bytes = slurp();
  ASSERT_GT(bytes.size(), 40u);
  dump(bytes.substr(0, bytes.size() - 16));
  expect_load_error("truncated");
}

TEST_F(EvalCacheFile, CorruptionRejectedByChecksum) {
  tuner::save_eval_cache(path_, sample_snapshot());
  std::string bytes = slurp();
  bytes[bytes.size() / 2] ^= 0x20;  // flip one payload bit
  dump(bytes);
  expect_load_error("checksum");
}

TEST_F(EvalCacheFile, TrailingGarbageRejected) {
  tuner::save_eval_cache(path_, sample_snapshot());
  dump(slurp() + "extra");
  expect_load_error("trailing");
}

// ---------------------------------------------------------------------------
// Fingerprint gating at restore().

tuner::SuiteEvaluator make_evaluator(int iterations) {
  std::vector<wl::Workload> suite;
  suite.push_back(wl::make_workload("db"));
  tuner::EvalConfig config;
  config.iterations = iterations;
  return tuner::SuiteEvaluator(std::move(suite), config);
}

TEST_F(EvalCacheFile, RestoredEntriesSatisfyEvaluateWithoutARun) {
  tuner::SuiteEvaluator producer = make_evaluator(/*iterations=*/2);
  const heur::InlineParams params = heur::default_params();
  const tuner::SuiteEvaluator::Results want = producer.evaluate(params);
  ASSERT_EQ(producer.evaluations_performed(), 1u);
  tuner::save_eval_cache(path_, producer.snapshot());

  tuner::SuiteEvaluator consumer = make_evaluator(/*iterations=*/2);
  consumer.restore(tuner::load_eval_cache(path_));
  const tuner::SuiteEvaluator::Results got = consumer.evaluate(params);
  EXPECT_EQ(consumer.evaluations_performed(), 0u);  // pure cache hit
  ASSERT_EQ(got->size(), want->size());
  EXPECT_EQ((*got)[0].name, (*want)[0].name);
  EXPECT_EQ((*got)[0].running_cycles, (*want)[0].running_cycles);
  EXPECT_EQ((*got)[0].total_cycles, (*want)[0].total_cycles);
  EXPECT_EQ((*got)[0].compile_cycles, (*want)[0].compile_cycles);
}

TEST_F(EvalCacheFile, FingerprintMismatchRefusedByRestore) {
  tuner::SuiteEvaluator producer = make_evaluator(/*iterations=*/2);
  producer.evaluate(heur::default_params());
  tuner::save_eval_cache(path_, producer.snapshot());

  // A differently-configured evaluator (iteration count changes every cycle
  // figure) must refuse the snapshot outright rather than serve stale rows.
  tuner::SuiteEvaluator other = make_evaluator(/*iterations=*/3);
  ASSERT_NE(other.cache_fingerprint(), producer.cache_fingerprint());
  const tuner::EvalCacheSnapshot snap = tuner::load_eval_cache(path_);
  try {
    other.restore(snap);
    FAIL() << "expected fingerprint mismatch Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"), std::string::npos) << e.what();
  }
  EXPECT_EQ(other.cache_size(), 0u);  // nothing leaked in before the check
}

}  // namespace
}  // namespace ith
