// End-to-end integration tests: the full pipeline (workloads -> VM ->
// evaluator -> fitness -> GA) exercised together, plus the qualitative
// paper shapes the benches rely on, so a regression in any layer that
// would silently distort the reproduction fails CI instead.
#include <gtest/gtest.h>

#include "ga/baselines.hpp"
#include "support/error.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/report.hpp"
#include "tuner/tuner.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

tuner::EvalConfig opt_x86() {
  tuner::EvalConfig cfg;
  cfg.machine = rt::pentium4_model();
  cfg.scenario = vm::Scenario::kOpt;
  return cfg;
}

TEST(Pipeline, WholeSuiteEvaluationIsDeterministic) {
  tuner::SuiteEvaluator a(wl::make_suite("specjvm98"), opt_x86());
  tuner::SuiteEvaluator b(wl::make_suite("specjvm98"), opt_x86());
  const auto& ra = *a.evaluate(heur::default_params());
  const auto& rb = *b.evaluate(heur::default_params());
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].running_cycles, rb[i].running_cycles) << ra[i].name;
    EXPECT_EQ(ra[i].total_cycles, rb[i].total_cycles) << ra[i].name;
  }
}

TEST(Pipeline, DefaultBeatsNeverInlineOnRunningTime) {
  // Figure 1's core premise: inlining improves SPEC running time a lot.
  tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), opt_x86());
  heur::NeverInlineHeuristic never;
  const auto no_inline = eval.evaluate_heuristic(never);
  const auto with_default = eval.default_results();
  const auto rows = tuner::compare_results(*with_default, no_inline);
  const double avg_running = tuner::average_row(rows).running_ratio;
  EXPECT_LT(avg_running, 0.85) << "default inlining must buy well over 15% running time";
}

TEST(Pipeline, AggressiveInliningInflatesOptCompileTime) {
  // Figure 1's other half: the cost side of the trade-off.
  tuner::SuiteEvaluator eval(wl::make_suite("dacapo+jbb"), opt_x86());
  heur::NeverInlineHeuristic never;
  heur::AlwaysInlineHeuristic always;
  const auto off = eval.evaluate_heuristic(never);
  const auto on = eval.evaluate_heuristic(always);
  std::uint64_t compile_off = 0, compile_on = 0;
  for (std::size_t i = 0; i < off.size(); ++i) {
    compile_off += off[i].compile_cycles;
    compile_on += on[i].compile_cycles;
  }
  EXPECT_GT(compile_on, 2 * compile_off)
      << "inline-everything must at least double suite compile time";
}

TEST(Pipeline, AdaptSpendsFarLessCompileThanOptOnColdSuite) {
  // The premise behind the Adapt scenario (and Figures 5 vs 6/7).
  tuner::EvalConfig adapt = opt_x86();
  adapt.scenario = vm::Scenario::kAdapt;
  tuner::SuiteEvaluator opt_eval(wl::make_suite("dacapo+jbb"), opt_x86());
  tuner::SuiteEvaluator adapt_eval(wl::make_suite("dacapo+jbb"), adapt);
  const auto& o = *opt_eval.default_results();
  const auto& a = *adapt_eval.default_results();
  for (std::size_t i = 0; i < o.size(); ++i) {
    EXPECT_LT(a[i].total_cycles, o[i].total_cycles)
        << a[i].name << ": Adapt total must beat Opt total on one-shot-heavy programs";
  }
}

TEST(Pipeline, GaTuningBeatsDefaultAndIsCompetitiveWithRandom) {
  tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), opt_x86());
  ga::GaConfig cfg = tuner::default_ga_config(/*generations=*/10, /*seed=*/5);
  cfg.population = 12;
  const tuner::TuneResult tuned = tuner::tune(eval, tuner::Goal::kTotal, cfg);
  EXPECT_LT(tuned.best_fitness, 1.0);

  // The five-threshold landscape has broad plateau optima, so at small
  // budgets random sampling is genuinely competitive (see ablation_search);
  // the GA just must not be *much* worse.
  const ga::GenomeSpace space = tuner::inline_param_space(false);
  const ga::FitnessFn fitness = tuner::make_fitness(eval, tuner::Goal::kTotal);
  const ga::SearchResult rnd =
      ga::random_search(space, fitness, std::max<std::size_t>(tuned.ga.evaluations, 10), 5);
  EXPECT_LE(tuned.best_fitness, rnd.best_fitness * 1.12);
}

TEST(Pipeline, TunedForTotalImprovesUnseenSuiteTotal) {
  // The paper's generalization claim, as a regression test with a live
  // (small-budget) GA rather than recorded parameters.
  tuner::SuiteEvaluator train(wl::make_suite("specjvm98"), opt_x86());
  ga::GaConfig cfg = tuner::default_ga_config(/*generations=*/12, /*seed=*/9);
  const tuner::TuneResult tuned = tuner::tune(train, tuner::Goal::kTotal, cfg);

  tuner::SuiteEvaluator test(wl::make_suite("dacapo+jbb"), opt_x86());
  const auto rows = tuner::compare_results(*test.evaluate(tuned.best), *test.default_results());
  EXPECT_LT(tuner::average_row(rows).total_ratio, 1.0)
      << "params tuned on SPEC must still cut total time on the unseen suite";
}

TEST(Pipeline, BalanceGoalSitsBetweenRunningAndTotalGoals) {
  // Tuning for balance should never be *worse on running* than tuning for
  // total, nor *worse on total* than tuning for running (up to GA noise).
  tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), opt_x86());
  ga::GaConfig cfg = tuner::default_ga_config(/*generations=*/10, /*seed=*/3);
  cfg.population = 12;
  const auto for_running = tuner::tune(eval, tuner::Goal::kRunning, cfg);
  const auto for_total = tuner::tune(eval, tuner::Goal::kTotal, cfg);
  const auto for_balance = tuner::tune(eval, tuner::Goal::kBalance, cfg);

  const auto& dflt = *eval.default_results();
  const double bal_running =
      tuner::suite_fitness(tuner::Goal::kRunning, *eval.evaluate(for_balance.best), dflt);
  const double tot_running =
      tuner::suite_fitness(tuner::Goal::kRunning, *eval.evaluate(for_total.best), dflt);
  const double bal_total =
      tuner::suite_fitness(tuner::Goal::kTotal, *eval.evaluate(for_balance.best), dflt);
  const double run_total =
      tuner::suite_fitness(tuner::Goal::kTotal, *eval.evaluate(for_running.best), dflt);

  EXPECT_LE(bal_running, tot_running + 0.05) << "balance shouldn't sacrifice running like Tot does";
  EXPECT_LE(bal_total, run_total + 0.05) << "balance shouldn't sacrifice total like Running does";
}

TEST(Pipeline, HotCalleeGeneMattersOnlyUnderAdapt) {
  // Structural NA of Table 4: sweeping HOT_CALLEE_MAX_SIZE changes nothing
  // under Opt (no profile ever marks a site hot) but does under Adapt.
  heur::InlineParams lo = heur::default_params();
  lo.hot_callee_max_size = 1;
  heur::InlineParams hi = heur::default_params();
  hi.hot_callee_max_size = 400;

  tuner::SuiteEvaluator opt_eval({wl::make_workload("compress")}, opt_x86());
  EXPECT_EQ((*opt_eval.evaluate(lo))[0].total_cycles, (*opt_eval.evaluate(hi))[0].total_cycles);

  tuner::EvalConfig adapt = opt_x86();
  adapt.scenario = vm::Scenario::kAdapt;
  tuner::SuiteEvaluator adapt_eval({wl::make_workload("compress")}, adapt);
  EXPECT_NE((*adapt_eval.evaluate(lo))[0].running_cycles, (*adapt_eval.evaluate(hi))[0].running_cycles);
}

TEST(Pipeline, PpcAndX86ProduceDifferentTimes) {
  tuner::EvalConfig ppc = opt_x86();
  ppc.machine = rt::ppc_g4_model();
  tuner::SuiteEvaluator x86_eval({wl::make_workload("jess")}, opt_x86());
  tuner::SuiteEvaluator ppc_eval({wl::make_workload("jess")}, ppc);
  EXPECT_NE((*x86_eval.default_results())[0].total_cycles,
            (*ppc_eval.default_results())[0].total_cycles);
}

}  // namespace
}  // namespace ith
