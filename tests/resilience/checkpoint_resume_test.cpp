// Kill-and-resume property: interrupting a seeded GA run at *any* journaled
// generation and resuming from the checkpoint yields the identical best
// genome, fitness, and generation history as the uninterrupted run. First
// proven at the GA layer with a synthetic fitness (cheap: resume from every
// generation), then end-to-end through tune() with a real evaluator, fault
// injection, and a mid-run "kill" (an exception thrown from the progress
// callback, the same point where chaos_tune calls exit(3)).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ga/ga.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "support/error.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/tuner.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

void expect_same_history(const std::vector<ga::GenerationStats>& a,
                         const std::vector<ga::GenerationStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].generation, b[i].generation);
    EXPECT_EQ(a[i].best, b[i].best);
    EXPECT_EQ(a[i].mean, b[i].mean);
    EXPECT_EQ(a[i].worst, b[i].worst);
    EXPECT_EQ(a[i].diversity, b[i].diversity);
    EXPECT_EQ(a[i].best_genome, b[i].best_genome);
  }
}

TEST(CheckpointResume, ResumingAnyGenerationMatchesStraightThrough) {
  const ga::GenomeSpace space({{"a", 0, 25}, {"b", 0, 25}, {"c", 0, 25}});
  const ga::FitnessFn fitness = [](const ga::Genome& g) {
    double d = 1.0;
    const int target[3] = {7, 3, 19};
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double delta = g[i] - target[i];
      d += delta * delta;
    }
    return d;
  };
  ga::GaConfig config;
  config.population = 10;
  config.generations = 8;
  config.seed = 99;
  config.memoize = true;
  config.quarantine_source = [] {
    return std::vector<std::vector<int>>{{1, 2, 3}};  // snapshot passthrough
  };

  std::map<int, resilience::GaCheckpoint> checkpoints;
  config.journal = [&checkpoints](const resilience::GaCheckpoint& cp) {
    checkpoints[cp.generation] = cp;
  };

  ga::GeneticAlgorithm straight(space, fitness, config);
  const ga::GaResult want = straight.run();
  ASSERT_EQ(checkpoints.size(), 8u);  // generations 0..7, every one journaled
  EXPECT_EQ(checkpoints[3].quarantine, config.quarantine_source());
  EXPECT_EQ(checkpoints[7].best_genome, want.best);

  for (const auto& [gen, cp] : checkpoints) {
    ga::GaConfig resumed_config = config;
    resumed_config.journal = nullptr;  // resumed runs need not re-journal here
    resumed_config.resume_from = &cp;
    ga::GeneticAlgorithm resumed(space, fitness, resumed_config);
    const ga::GaResult got = resumed.run();
    EXPECT_EQ(got.best, want.best) << "resumed from generation " << gen;
    EXPECT_EQ(got.best_fitness, want.best_fitness) << "resumed from generation " << gen;
    EXPECT_EQ(got.evaluations, want.evaluations) << "resumed from generation " << gen;
    EXPECT_EQ(got.cache_hits, want.cache_hits) << "resumed from generation " << gen;
    expect_same_history(got.history, want.history);
  }
}

TEST(CheckpointResume, FingerprintMismatchRefused) {
  const ga::GenomeSpace space({{"a", 0, 25}, {"b", 0, 25}});
  const ga::FitnessFn fitness = [](const ga::Genome& g) { return 1.0 + g[0] + g[1]; };
  ga::GaConfig config;
  config.population = 6;
  config.generations = 2;
  config.seed = 5;

  resilience::GaCheckpoint last;
  config.journal = [&last](const resilience::GaCheckpoint& cp) { last = cp; };
  ga::GeneticAlgorithm(space, fitness, config).run();
  ASSERT_EQ(last.generation, 1);  // generations=2 runs gens 0 and 1

  ga::GaConfig other = config;
  other.seed = 6;  // a different search — its checkpoints are not ours
  other.resume_from = &last;
  ga::GeneticAlgorithm mismatched(space, fitness, other);
  EXPECT_THROW(mismatched.run(), Error);
}

// End-to-end through tune(): a run killed mid-flight (from the progress
// callback, after the generation's checkpoint landed) and resumed must
// reproduce the uninterrupted run exactly — with fault injection on, since
// pure-hash fault decisions are what make the two fault histories line up.
TEST(CheckpointResume, TuneKillAndResumeMatchesStraightThrough) {
  struct KillSignal {};
  const std::string dir = ::testing::TempDir();
  const std::string straight_path = dir + "tune_straight.cp";
  const std::string killed_path = dir + "tune_killed.cp";
  std::remove(straight_path.c_str());
  std::remove(killed_path.c_str());

  resilience::FaultPlan plan;
  plan.rate = 0.2;
  plan.seed = 11;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kEvaluator);

  const auto make_evaluator = [&plan] {
    std::vector<wl::Workload> suite;
    suite.push_back(wl::make_workload("db"));
    tuner::EvalConfig config;
    config.iterations = 2;
    config.max_retries = 6;
    config.vm_config.faults = &plan;
    return tuner::SuiteEvaluator(std::move(suite), config);
  };
  ga::GaConfig ga_config;
  ga_config.population = 6;
  ga_config.generations = 3;
  ga_config.seed = 21;

  tuner::SuiteEvaluator straight_eval = make_evaluator();
  tuner::TuneCheckpointOptions straight_opts;
  straight_opts.path = straight_path;
  const tuner::TuneResult want =
      tuner::tune(straight_eval, tuner::Goal::kTotal, ga_config, straight_opts);

  tuner::SuiteEvaluator killed_eval = make_evaluator();
  tuner::TuneCheckpointOptions killed_opts;
  killed_opts.path = killed_path;
  killed_opts.on_generation = [](const ga::GenerationStats& stats) {
    if (stats.generation == 1) throw KillSignal{};  // checkpoint already on disk
  };
  EXPECT_THROW(tuner::tune(killed_eval, tuner::Goal::kTotal, ga_config, killed_opts), KillSignal);
  EXPECT_EQ(resilience::load_checkpoint(killed_path).generation, 1);

  tuner::SuiteEvaluator resumed_eval = make_evaluator();
  tuner::TuneCheckpointOptions resume_opts;
  resume_opts.path = killed_path;
  resume_opts.resume = true;
  const tuner::TuneResult got =
      tuner::tune(resumed_eval, tuner::Goal::kTotal, ga_config, resume_opts);

  EXPECT_EQ(got.ga.best, want.ga.best);
  EXPECT_EQ(got.best_fitness, want.best_fitness);
  EXPECT_EQ(got.best.to_string(), want.best.to_string());
  expect_same_history(got.ga.history, want.ga.history);

  std::remove(straight_path.c_str());
  std::remove(killed_path.c_str());
}

// Resuming a checkpoint of an already-finished run re-runs nothing and
// returns the restored result.
TEST(CheckpointResume, ResumeOfFinishedRunIsANoOp) {
  const ga::GenomeSpace space({{"a", 0, 9}});
  std::size_t calls = 0;
  const ga::FitnessFn fitness = [&calls](const ga::Genome& g) {
    ++calls;
    return 1.0 + g[0];
  };
  ga::GaConfig config;
  config.population = 4;
  config.generations = 2;
  config.seed = 3;

  resilience::GaCheckpoint last;
  config.journal = [&last](const resilience::GaCheckpoint& cp) { last = cp; };
  ga::GeneticAlgorithm straight(space, fitness, config);
  const ga::GaResult want = straight.run();

  const std::size_t calls_before = calls;
  ga::GaConfig resumed_config = config;
  resumed_config.resume_from = &last;
  resumed_config.journal = nullptr;
  ga::GeneticAlgorithm resumed(space, fitness, resumed_config);
  const ga::GaResult got = resumed.run();
  EXPECT_EQ(calls, calls_before);  // nothing re-evaluated
  EXPECT_EQ(got.best, want.best);
  EXPECT_EQ(got.best_fitness, want.best_fitness);
}

}  // namespace
}  // namespace ith
