// Resilience layer: budget enforcement/classification, deterministic fault
// injection, checkpoint file integrity, and sink fault tolerance.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/heuristic.hpp"
#include "obs/sink.hpp"
#include "resilience/budget.hpp"
#include "resilience/chaos_sink.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "resilience/guard.hpp"
#include "runtime/machine.hpp"
#include "support/error.hpp"
#include "workloads/suite.hpp"

namespace ith {
namespace {

// ---------------------------------------------------------------------------
// Guarded runs: every budget axis classifies as itself, never as a throw.

struct GuardedFixture {
  wl::Workload workload = wl::make_workload("db");
  rt::MachineModel machine = rt::pentium4_model();
  heur::JikesHeuristic heuristic{heur::default_params()};

  resilience::GuardedRun run(const resilience::RunBudget& budget) {
    vm::VmConfig cfg;
    cfg.budget = budget;
    return resilience::guarded_run(workload.program, machine, heuristic, cfg, 2);
  }
};

TEST(GuardedRun, UnlimitedBudgetIsOk) {
  GuardedFixture f;
  const resilience::GuardedRun gr = f.run({});
  EXPECT_TRUE(gr.outcome.ok());
  EXPECT_EQ(gr.outcome.to_string(), "ok");
  EXPECT_GT(gr.result.total_cycles, 0u);
}

TEST(GuardedRun, SimCycleBudgetClassifies) {
  GuardedFixture f;
  resilience::RunBudget b;
  b.max_sim_cycles = 1000;
  const resilience::GuardedRun gr = f.run(b);
  EXPECT_EQ(gr.outcome.kind, resilience::OutcomeKind::kBudgetExceeded);
  EXPECT_EQ(gr.outcome.budget, resilience::BudgetKind::kSimCycles);
  EXPECT_EQ(gr.outcome.to_string(), "budget-exceeded(sim-cycles)");
}

TEST(GuardedRun, CompileCycleBudgetClassifies) {
  GuardedFixture f;
  resilience::RunBudget b;
  b.max_compile_cycles = 1;
  const resilience::GuardedRun gr = f.run(b);
  EXPECT_EQ(gr.outcome.kind, resilience::OutcomeKind::kBudgetExceeded);
  EXPECT_EQ(gr.outcome.budget, resilience::BudgetKind::kCompileCycles);
}

TEST(GuardedRun, InstructionBudgetClassifies) {
  GuardedFixture f;
  resilience::RunBudget b;
  b.max_instructions = 64;
  const resilience::GuardedRun gr = f.run(b);
  EXPECT_EQ(gr.outcome.kind, resilience::OutcomeKind::kBudgetExceeded);
  EXPECT_EQ(gr.outcome.budget, resilience::BudgetKind::kInstructions);
}

TEST(GuardedRun, FrameDepthBudgetClassifies) {
  GuardedFixture f;
  resilience::RunBudget b;
  b.max_frame_depth = 1;  // any call beyond main trips
  const resilience::GuardedRun gr = f.run(b);
  EXPECT_EQ(gr.outcome.kind, resilience::OutcomeKind::kBudgetExceeded);
  EXPECT_EQ(gr.outcome.budget, resilience::BudgetKind::kFrameDepth);
}

TEST(GuardedRun, ArenaBudgetClassifies) {
  GuardedFixture f;
  resilience::RunBudget b;
  b.max_arena_words = 4;
  const resilience::GuardedRun gr = f.run(b);
  EXPECT_EQ(gr.outcome.kind, resilience::OutcomeKind::kBudgetExceeded);
  EXPECT_EQ(gr.outcome.budget, resilience::BudgetKind::kArena);
}

TEST(GuardedRun, InjectedVmTrapClassifies) {
  GuardedFixture f;
  resilience::FaultPlan plan;
  plan.rate = 1.0;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kVmTrap);
  vm::VmConfig cfg;
  cfg.faults = &plan;
  const resilience::GuardedRun gr =
      resilience::guarded_run(f.workload.program, f.machine, f.heuristic, cfg, 2);
  EXPECT_EQ(gr.outcome.kind, resilience::OutcomeKind::kTrap);
  EXPECT_EQ(gr.outcome.trap, resilience::TrapKind::kInjected);
  EXPECT_EQ(gr.outcome.to_string(), "trap(injected)");
}

// The classification the fuzz oracle's budget-diff tier relies on: both
// engines must agree on the axis, not the detail text.
TEST(GuardedRun, SameClassificationIgnoresDetail) {
  const auto a = resilience::EvalOutcome::budget_exceeded(resilience::BudgetKind::kInstructions,
                                                          "engine A text");
  const auto b = resilience::EvalOutcome::budget_exceeded(resilience::BudgetKind::kInstructions,
                                                          "engine B text");
  const auto c = resilience::EvalOutcome::budget_exceeded(resilience::BudgetKind::kFrameDepth, "");
  EXPECT_TRUE(a.same_classification(b));
  EXPECT_FALSE(a.same_classification(c));
  EXPECT_FALSE(a.same_classification(resilience::EvalOutcome::make_ok()));
}

// ---------------------------------------------------------------------------
// Fault plans: pure-hash decisions, site parsing.

TEST(FaultPlan, DecisionsArePureAndSeeded) {
  resilience::FaultPlan plan;
  plan.seed = 42;
  plan.rate = 0.5;
  plan.sites = resilience::FaultPlan::parse_sites("all");
  int fired = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const bool a = plan.should_inject(resilience::FaultSite::kVmTrap, key);
    const bool b = plan.should_inject(resilience::FaultSite::kVmTrap, key);
    EXPECT_EQ(a, b);  // pure function of (seed, site, key)
    fired += a ? 1 : 0;
  }
  // rate 0.5 over 1000 keys: comfortably between 400 and 600.
  EXPECT_GT(fired, 400);
  EXPECT_LT(fired, 600);

  resilience::FaultPlan other = plan;
  other.seed = 43;
  int differs = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    differs += plan.should_inject(resilience::FaultSite::kVmTrap, key) !=
                       other.should_inject(resilience::FaultSite::kVmTrap, key)
                   ? 1
                   : 0;
  }
  EXPECT_GT(differs, 0);  // a different seed is a different plan
}

TEST(FaultPlan, RateZeroAndDisabledSitesNeverFire) {
  resilience::FaultPlan plan;  // default: rate 0, no sites
  EXPECT_FALSE(plan.armed());
  EXPECT_FALSE(plan.should_inject(resilience::FaultSite::kVmTrap, 7));

  plan.rate = 1.0;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kSink);
  EXPECT_TRUE(plan.armed());
  EXPECT_FALSE(plan.should_inject(resilience::FaultSite::kVmTrap, 7));  // site not armed
  EXPECT_TRUE(plan.should_inject(resilience::FaultSite::kSink, 7));     // rate 1, armed
}

TEST(FaultPlan, ParseSites) {
  using resilience::FaultPlan;
  using resilience::FaultSite;
  EXPECT_EQ(FaultPlan::parse_sites("vm,eval"),
            FaultPlan::site_bit(FaultSite::kVmTrap) | FaultPlan::site_bit(FaultSite::kEvaluator));
  // "all" spans both planes: the four eval sites and the five kSvc*
  // service sites; "svc" is the service plane alone.
  EXPECT_EQ(FaultPlan::parse_sites("vm,compile,eval,sink"), FaultPlan::eval_sites());
  EXPECT_EQ(FaultPlan::parse_sites("accept,read,write,dispatch,snapshot"),
            FaultPlan::service_sites());
  EXPECT_EQ(FaultPlan::parse_sites("svc"), FaultPlan::service_sites());
  EXPECT_EQ(FaultPlan::parse_sites("all"),
            FaultPlan::eval_sites() | FaultPlan::service_sites());
  EXPECT_EQ(FaultPlan::parse_sites(""), 0u);
  EXPECT_THROW(FaultPlan::parse_sites("vm,bogus"), Error);
}

// ---------------------------------------------------------------------------
// Checkpoint file format: roundtrip and corruption detection.

resilience::GaCheckpoint sample_checkpoint() {
  resilience::GaCheckpoint cp;
  cp.fingerprint = 0xfeedfacecafebeefULL;
  cp.generation = 7;
  cp.rng_state = 0x123456789abcdef0ULL;
  cp.rng_inc = 0x1111111111111111ULL;
  cp.evaluations = 42;
  cp.cache_hits = 17;
  cp.best_ever = 0.875;
  cp.best_genome = {3, 1, 4, 1, 5};
  cp.stale = 2;
  cp.population = {{1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}};
  cp.fitness = {0.9, 1.1};
  cp.cache = {{{1, 2, 3, 4, 5}, 0.9}, {{5, 4, 3, 2, 1}, 1.1}};
  ga::GenerationStats gs;
  gs.generation = 7;
  gs.best = 0.875;
  gs.mean = 1.0;
  gs.worst = 1.25;
  gs.diversity = 0.5;
  gs.best_genome = cp.best_genome;
  cp.history = {gs};
  cp.quarantine = {{9, 9, 9, 9, 9}};
  return cp;
}

class CheckpointFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "resilience_cp_test.bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CheckpointFile, Roundtrip) {
  const resilience::GaCheckpoint cp = sample_checkpoint();
  resilience::save_checkpoint(path_, cp);
  const resilience::GaCheckpoint got = resilience::load_checkpoint(path_);
  EXPECT_EQ(got.fingerprint, cp.fingerprint);
  EXPECT_EQ(got.generation, cp.generation);
  EXPECT_EQ(got.rng_state, cp.rng_state);
  EXPECT_EQ(got.rng_inc, cp.rng_inc);
  EXPECT_EQ(got.evaluations, cp.evaluations);
  EXPECT_EQ(got.cache_hits, cp.cache_hits);
  EXPECT_EQ(got.best_ever, cp.best_ever);
  EXPECT_EQ(got.best_genome, cp.best_genome);
  EXPECT_EQ(got.stale, cp.stale);
  EXPECT_EQ(got.population, cp.population);
  EXPECT_EQ(got.fitness, cp.fitness);
  EXPECT_EQ(got.cache, cp.cache);
  EXPECT_EQ(got.quarantine, cp.quarantine);
  ASSERT_EQ(got.history.size(), 1u);
  EXPECT_EQ(got.history[0].generation, 7);
  EXPECT_EQ(got.history[0].best, 0.875);
  EXPECT_EQ(got.history[0].best_genome, cp.best_genome);
}

TEST_F(CheckpointFile, MissingFileRejected) {
  EXPECT_THROW(resilience::load_checkpoint(path_), Error);
}

TEST_F(CheckpointFile, BadMagicRejected) {
  std::ofstream out(path_, std::ios::binary);
  out << "definitely not a checkpoint, but comfortably longer than a header";
  out.close();
  try {
    resilience::load_checkpoint(path_);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos) << e.what();
  }
}

TEST_F(CheckpointFile, TruncationRejected) {
  resilience::save_checkpoint(path_, sample_checkpoint());
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 40u);
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 24));
  out.close();
  try {
    resilience::load_checkpoint(path_);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
}

TEST_F(CheckpointFile, CorruptionRejectedByChecksum) {
  resilience::save_checkpoint(path_, sample_checkpoint());
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  try {
    resilience::load_checkpoint(path_);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST_F(CheckpointFile, TrailingGarbageRejected) {
  resilience::save_checkpoint(path_, sample_checkpoint());
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  try {
    resilience::load_checkpoint(path_);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Sink fault tolerance.

obs::Event make_event(const char* name) {
  obs::Event e;
  e.name = name;
  return e;
}

TEST(SinkResilience, JsonlSinkDegradesOnStreamFailure) {
  std::ostringstream os;
  {
    obs::JsonlSink sink(os, /*buffer_bytes=*/1);  // spill on every write
    sink.write(make_event("first"));
    EXPECT_TRUE(sink.ok());
    os.setstate(std::ios::badbit);  // the "disk" goes away
    sink.write(make_event("second"));
    sink.flush();
    EXPECT_FALSE(sink.ok());
    os.clear();  // stream recovers, but the sink stays latched off
    sink.write(make_event("third"));
    sink.flush();
    EXPECT_FALSE(sink.ok());
  }
  EXPECT_NE(os.str().find("first"), std::string::npos);
  EXPECT_EQ(os.str().find("third"), std::string::npos);
}

TEST(SinkResilience, ChaosSinkDropsDeterministically) {
  resilience::FaultPlan plan;
  plan.seed = 5;
  plan.rate = 0.5;
  plan.sites = resilience::FaultPlan::site_bit(resilience::FaultSite::kSink);

  const auto run_once = [&plan] {
    obs::MemorySink memory;
    resilience::ChaosSink chaos(memory, plan);
    for (int i = 0; i < 100; ++i) chaos.write(make_event("e"));
    return std::pair<std::size_t, std::uint64_t>(memory.size(), chaos.dropped());
  };
  const auto [kept_a, dropped_a] = run_once();
  const auto [kept_b, dropped_b] = run_once();
  EXPECT_EQ(kept_a, kept_b);  // keyed by sequence number: replayable
  EXPECT_EQ(dropped_a, dropped_b);
  EXPECT_EQ(kept_a + dropped_a, 100u);
  EXPECT_GT(dropped_a, 0u);
  EXPECT_GT(kept_a, 0u);

  plan.rate = 0.0;
  obs::MemorySink memory;
  resilience::ChaosSink quiet(memory, plan);
  for (int i = 0; i < 10; ++i) quiet.write(make_event("e"));
  EXPECT_EQ(memory.size(), 10u);
  EXPECT_EQ(quiet.dropped(), 0u);
}

}  // namespace
}  // namespace ith
