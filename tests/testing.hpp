// Shared test fixtures: small hand-built programs with known semantics,
// plus helpers to execute a program functionally (no VM, no cost model)
// so transformation passes can be checked for behavioural equivalence.
#pragma once

#include <cstdint>

#include "bytecode/builder.hpp"
#include "bytecode/program.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"

namespace ith::test {

/// main() { return 2 + 3; } via a helper: main -> add2(2,3).
inline bc::Program make_add_program() {
  bc::ProgramBuilder pb("add", 0);
  pb.method("add2", 2, 2).load(0).load(1).add().ret();
  pb.method("main", 0, 0).const_(2).const_(3).call("add2", 2).halt();
  pb.entry("main");
  return pb.build();
}

/// main() { s = 0; for (i = 0; i < n; ++i) s += square(i); return s; }
inline bc::Program make_loop_program(std::int64_t n = 10) {
  bc::ProgramBuilder pb("loop", 0);
  pb.method("square", 1, 1).load(0).load(0).mul().ret();
  auto& m = pb.method("main", 0, 2);
  m.const_(0).store(0).const_(0).store(1);
  m.label("head");
  m.load(0).const_(n).cmplt().jz("done");
  m.load(0).call("square", 1).load(1).add().store(1);
  m.load(0).const_(1).add().store(0);
  m.jmp("head");
  m.label("done");
  m.load(1).halt();
  pb.entry("main");
  return pb.build();
}

/// main() { return fib(n); } with naive double recursion.
inline bc::Program make_fib_program(std::int64_t n = 10) {
  bc::ProgramBuilder pb("fib", 0);
  auto& f = pb.method("fib", 1, 1);
  f.load(0).const_(2).cmplt().jz("rec");
  f.load(0).ret();
  f.label("rec");
  f.load(0).const_(1).sub().call("fib", 1);
  f.load(0).const_(2).sub().call("fib", 1);
  f.add().ret();
  pb.method("main", 0, 0).const_(n).call("fib", 1).halt();
  pb.entry("main");
  return pb.build();
}

/// main() writes then reads the global array: g[7] = 41; return g[7] + 1.
inline bc::Program make_globals_program() {
  bc::ProgramBuilder pb("globals", 16);
  auto& m = pb.method("main", 0, 0);
  m.const_(7).const_(41).gstore();
  m.const_(7).gload().const_(1).add().halt();
  pb.entry("main");
  return pb.build();
}

/// A "code source" that compiles nothing: every method runs as-is at the
/// given tier, zero compile accounting. For functional execution in tests.
class IdentitySource final : public rt::CodeSource {
 public:
  explicit IdentitySource(const bc::Program& prog, rt::Tier tier = rt::Tier::kOpt)
      : prog_(prog), tier_(tier), compiled_(prog.num_methods()) {}

  const rt::CompiledMethod& invoke(bc::MethodId id) override {
    auto& slot = compiled_[static_cast<std::size_t>(id)];
    if (!slot) {
      slot = std::make_unique<rt::CompiledMethod>();
      slot->body = prog_.method(id);
      slot->tier = tier_;
      slot->method_id = id;
      slot->code_base = 0x1000 + 0x10000 * static_cast<std::uint64_t>(id);
      slot->origin.resize(slot->body.size());
      for (std::size_t pc = 0; pc < slot->body.size(); ++pc) {
        slot->origin[pc] = {id, static_cast<std::int32_t>(pc)};
      }
      slot->finalize();
    }
    return *slot;
  }

 private:
  const bc::Program& prog_;
  rt::Tier tier_;
  std::vector<std::unique_ptr<rt::CompiledMethod>> compiled_;
};

/// Runs `prog` functionally and returns its exit value.
inline std::int64_t run_exit_value(const bc::Program& prog) {
  static const rt::MachineModel machine = rt::pentium4_model();
  IdentitySource source(prog);
  rt::Interpreter interp(prog, machine, source, /*icache=*/nullptr);
  return interp.run().exit_value;
}

}  // namespace ith::test
