// End-to-end trace accounting: run the VM with a MemorySink attached and
// check the core observability invariant — the simulated-cycle compile
// spans in the trace sum exactly to RunResult::compile_cycles_all — plus
// the presence and consistency of the tiering events around them.
#include <cstring>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "testing.hpp"
#include "vm/vm.hpp"

namespace ith::vm {
namespace {

bool is_compile_span(const obs::Event& e) {
  return e.phase == obs::Phase::kComplete && e.cat == obs::Category::kCompile;
}

struct TracedRun {
  RunResult result;
  std::vector<obs::Event> events;
};

TracedRun traced_adapt_run(std::uint32_t categories = obs::kAllCategories) {
  obs::MemorySink sink;
  obs::Context ctx(&sink, categories);
  const bc::Program p = ith::test::make_loop_program(500);
  heur::JikesHeuristic h;
  VmConfig cfg;
  cfg.scenario = Scenario::kAdapt;
  cfg.hot_method_threshold = 50;
  cfg.hot_site_threshold = 40;
  cfg.rehot_multiplier = 4;
  cfg.obs = &ctx;
  VirtualMachine m(p, rt::pentium4_model(), h, cfg);
  TracedRun out{m.run(2), {}};
  out.events = sink.events();
  return out;
}

TEST(VmTrace, CompileSpanDurationsSumToCompileCyclesAll) {
  const TracedRun run = traced_adapt_run();
  ASSERT_GT(run.result.compile_cycles_all, 0u);
  std::uint64_t traced = 0;
  std::size_t spans = 0;
  for (const obs::Event& e : run.events) {
    if (!is_compile_span(e)) continue;
    EXPECT_EQ(e.domain, obs::Domain::kSim);
    traced += e.dur;
    ++spans;
  }
  EXPECT_EQ(traced, run.result.compile_cycles_all);
  // Every compilation the VM counted has a span (methods_opt_compiled
  // already includes recompilations — it counts compile_opt invocations).
  EXPECT_EQ(spans, run.result.methods_baseline_compiled + run.result.methods_opt_compiled);
}

TEST(VmTrace, TieringEventsArePresentOnAHotRun) {
  const TracedRun run = traced_adapt_run();
  ASSERT_GT(run.result.recompilations, 0u) << "workload must get hot for this test";
  std::size_t promotes = 0, hot_sites = 0, installs = 0, iterations = 0;
  for (const obs::Event& e : run.events) {
    if (std::strcmp(e.name, "vm.promote") == 0) ++promotes;
    if (std::strcmp(e.name, "vm.hot_site") == 0) ++hot_sites;
    if (std::strcmp(e.name, "vm.install") == 0) ++installs;
    if (std::strcmp(e.name, "vm.iteration") == 0) ++iterations;
  }
  EXPECT_EQ(promotes, run.result.recompilations);
  EXPECT_GT(hot_sites, 0u);
  EXPECT_EQ(iterations, run.result.iterations.size());
  // Every compile pairs with exactly one install.
  EXPECT_EQ(installs, run.result.methods_baseline_compiled + run.result.methods_opt_compiled);
}

TEST(VmTrace, IterationSpansTileTheSimTimeline) {
  // kVm-only trace: compile spans are masked, yet the sim-cycle cursor must
  // keep advancing through compilation so iteration spans stay consistent.
  const TracedRun run = traced_adapt_run(static_cast<std::uint32_t>(obs::Category::kVm));
  std::uint64_t prev_end = 0;
  std::uint64_t exec = 0;
  std::size_t n = 0;
  for (const obs::Event& e : run.events) {
    if (std::strcmp(e.name, "vm.iteration") != 0) continue;
    EXPECT_EQ(e.phase, obs::Phase::kComplete);
    EXPECT_GE(e.ts, prev_end) << "iteration spans must not overlap";
    prev_end = e.ts + e.dur;
    ++n;
    for (const obs::Arg& a : e.args) {
      if (a.key == "exec_cycles") exec += static_cast<std::uint64_t>(std::get<std::int64_t>(a.value));
    }
  }
  ASSERT_EQ(n, run.result.iterations.size());
  // The timeline ends at total exec + compile cycles...
  std::uint64_t exec_all = 0;
  for (const IterationStats& it : run.result.iterations) exec_all += it.exec.cycles;
  EXPECT_EQ(prev_end, exec_all + run.result.compile_cycles_all);
  // ...and the per-span exec_cycles args reproduce the exec total.
  EXPECT_EQ(exec, exec_all);
}

TEST(VmTrace, FusionCountersPublishedOnFusedRun) {
  obs::MemorySink sink;
  obs::Context ctx(&sink);
  const bc::Program p = ith::test::make_loop_program(500);
  heur::JikesHeuristic h;
  VmConfig cfg;
  cfg.scenario = Scenario::kAdapt;
  cfg.hot_method_threshold = 50;
  cfg.hot_site_threshold = 40;
  cfg.rehot_multiplier = 4;
  cfg.interp_options.fusion = rt::FusionPolicy::kAll;  // pinned: env-independent
  cfg.obs = &ctx;
  VirtualMachine m(p, rt::pentium4_model(), h, cfg);
  m.run(2);
  std::map<std::string, std::int64_t> fused;
  for (const obs::Event& e : sink.events()) {
    if (e.phase != obs::Phase::kCounter) continue;
    for (const obs::Arg& a : e.args) {
      if (a.key.rfind("rt.fused", 0) == 0) fused[a.key] = std::get<std::int64_t>(a.value);
    }
  }
  ASSERT_FALSE(fused.empty()) << "fused run published no rt.fused_* counters";
  EXPECT_GT(fused["rt.fused_bodies"], 0);
  EXPECT_GT(fused["rt.fused_rules_fired"], 0);
  EXPECT_GT(fused["rt.fused_insns_eliminated"], 0);
  // Per-rule hits must reproduce the rules_fired total.
  std::int64_t rule_sum = 0;
  for (const auto& [key, v] : fused) {
    if (key.rfind("rt.fused_rule.", 0) == 0) rule_sum += v;
  }
  EXPECT_EQ(rule_sum, fused["rt.fused_rules_fired"]);

  // A fusion-off run publishes nothing in the family.
  obs::MemorySink off_sink;
  obs::Context off_ctx(&off_sink);
  VmConfig off_cfg = cfg;
  off_cfg.interp_options.fusion = rt::FusionPolicy::kOff;
  off_cfg.obs = &off_ctx;
  VirtualMachine off_m(p, rt::pentium4_model(), h, off_cfg);
  off_m.run(2);
  for (const obs::Event& e : off_sink.events()) {
    if (e.phase != obs::Phase::kCounter) continue;
    for (const obs::Arg& a : e.args) {
      EXPECT_NE(a.key.rfind("rt.fused", 0), 0u) << a.key << " published with fusion off";
    }
  }
}

TEST(VmTrace, NullContextRunMatchesTracedRun) {
  // Tracing must be observational only: identical cycle accounting with and
  // without a context attached.
  const TracedRun traced = traced_adapt_run();
  const bc::Program p = ith::test::make_loop_program(500);
  heur::JikesHeuristic h;
  VmConfig cfg;
  cfg.scenario = Scenario::kAdapt;
  cfg.hot_method_threshold = 50;
  cfg.hot_site_threshold = 40;
  cfg.rehot_multiplier = 4;
  VirtualMachine m(p, rt::pentium4_model(), h, cfg);
  const RunResult plain = m.run(2);
  EXPECT_EQ(plain.total_cycles, traced.result.total_cycles);
  EXPECT_EQ(plain.running_cycles, traced.result.running_cycles);
  EXPECT_EQ(plain.compile_cycles_all, traced.result.compile_cycles_all);
  EXPECT_EQ(plain.recompilations, traced.result.recompilations);
}

}  // namespace
}  // namespace ith::vm
