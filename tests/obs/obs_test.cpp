// Observability unit tests: event JSON serialization and escaping, the
// category mask, Context emission/counters/flush semantics, ScopedSpan,
// sink round-trips (JSONL lines and the Chrome document both parse back
// through support/json), and the schema validator that CI runs on traces.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/context.hpp"
#include "obs/event.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace ith::obs {
namespace {

Event make_span(const char* name, std::uint64_t ts, std::uint64_t dur) {
  Event e;
  e.name = name;
  e.cat = Category::kCompile;
  e.phase = Phase::kComplete;
  e.domain = Domain::kSim;
  e.ts = ts;
  e.dur = dur;
  return e;
}

// --- event JSON ---------------------------------------------------------

TEST(ObsEvent, CompleteEventSerializesAllFields) {
  Event e = make_span("compile.opt", 100, 42);
  e.tid = 3;
  e.args.emplace_back("method", "main");
  e.args.emplace_back("size_words", std::size_t{7});
  e.args.emplace_back("ratio", 0.5);
  std::string out;
  append_event_json(e, out);
  EXPECT_EQ(out,
            "{\"name\":\"compile.opt\",\"cat\":\"compile\",\"ph\":\"X\",\"ts\":100,"
            "\"dur\":42,\"pid\":1,\"tid\":3,\"args\":{\"method\":\"main\","
            "\"size_words\":7,\"ratio\":0.5}}");
}

TEST(ObsEvent, InstantEventOmitsDurAndEmptyArgs) {
  Event e;
  e.name = "vm.promote";
  e.cat = Category::kVm;
  e.phase = Phase::kInstant;
  e.domain = Domain::kHost;
  e.ts = 9;
  std::string out;
  append_event_json(e, out);
  EXPECT_EQ(out, "{\"name\":\"vm.promote\",\"cat\":\"vm\",\"ph\":\"i\",\"ts\":9,\"pid\":2,\"tid\":0}");
}

TEST(ObsEvent, StringArgsAreJsonEscaped) {
  Event e;
  e.name = "vm.install";
  e.phase = Phase::kInstant;
  e.args.emplace_back("method", std::string("a\"b\\c\nd\te\x01"));
  std::string out;
  append_event_json(e, out);
  EXPECT_NE(out.find("\"a\\\"b\\\\c\\nd\\te\\u0001\""), std::string::npos);
  // The escaped record must still be valid JSON and round-trip the string.
  const JsonValue v = parse_json(out);
  const JsonValue* args = v.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("method")->str, "a\"b\\c\nd\te\x01");
}

TEST(ObsEvent, CategoryNamesRoundTripThroughMaskParser) {
  for (const Category c : {Category::kVm, Category::kCompile, Category::kOpt, Category::kInline,
                           Category::kEval, Category::kGa}) {
    EXPECT_EQ(category_mask_from_string(category_name(c)), static_cast<std::uint32_t>(c));
  }
}

TEST(ObsEvent, CategoryMaskParsesListsAndAll) {
  EXPECT_EQ(category_mask_from_string(""), kAllCategories);
  EXPECT_EQ(category_mask_from_string("all"), kAllCategories);
  EXPECT_EQ(category_mask_from_string("eval,ga"),
            static_cast<std::uint32_t>(Category::kEval) | static_cast<std::uint32_t>(Category::kGa));
  EXPECT_THROW(category_mask_from_string("bogus"), Error);
  EXPECT_THROW(category_mask_from_string("vm,"), Error);
}

// --- Context ------------------------------------------------------------

TEST(ObsContext, NullSinkDisablesEverything) {
  Context ctx(nullptr);
  EXPECT_FALSE(ctx.enabled(Category::kVm));
  ctx.instant(Category::kVm, "x", Domain::kHost, 0);  // must not crash
  // Counters still accumulate so final totals survive a sinkless run.
  ctx.counter("vm.promotions").add(2);
  ASSERT_EQ(ctx.counter_values().size(), 1u);
  EXPECT_EQ(ctx.counter_values()[0].second, 2u);
  ctx.flush();  // no sink: no-op
}

TEST(ObsContext, CategoryMaskSuppressesAtEmitSite) {
  MemorySink sink;
  Context ctx(&sink, static_cast<std::uint32_t>(Category::kGa));
  EXPECT_TRUE(ctx.enabled(Category::kGa));
  EXPECT_FALSE(ctx.enabled(Category::kVm));
  ctx.instant(Category::kVm, "vm.promote", Domain::kHost, 1);
  ctx.instant(Category::kGa, "ga.generation", Domain::kHost, 2);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_STREQ(sink.events()[0].name, "ga.generation");
}

TEST(ObsContext, CompleteEmitsSpanWithDuration) {
  MemorySink sink;
  Context ctx(&sink);
  ctx.complete(Category::kCompile, "compile.baseline", Domain::kSim, 10, 32,
               {{"method", "main"}});
  ASSERT_EQ(sink.size(), 1u);
  const Event e = sink.events()[0];
  EXPECT_EQ(e.phase, Phase::kComplete);
  EXPECT_EQ(e.domain, Domain::kSim);
  EXPECT_EQ(e.ts, 10u);
  EXPECT_EQ(e.dur, 32u);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].key, "method");
}

TEST(ObsContext, CounterHandleIsStableAndFlushEmitsCounterEvents) {
  MemorySink sink;
  // Mask out everything: flush's counter export must bypass the mask.
  Context ctx(&sink, static_cast<std::uint32_t>(Category::kGa));
  Counter& c = ctx.counter("vm.compiles.opt");
  EXPECT_EQ(&c, &ctx.counter("vm.compiles.opt"));
  c.add();
  c.add(4);
  ctx.counter("ga.evaluations").add(9);
  ctx.flush();
  ASSERT_EQ(sink.size(), 2u);
  for (const Event& e : sink.events()) {
    EXPECT_EQ(e.phase, Phase::kCounter);
    EXPECT_STREQ(e.name, "counters");
    ASSERT_EQ(e.args.size(), 1u);
  }
  // counter_values() is sorted by name, and flush preserves that order.
  EXPECT_EQ(sink.events()[0].args[0].key, "ga.evaluations");
  EXPECT_EQ(sink.events()[1].args[0].key, "vm.compiles.opt");
  EXPECT_EQ(std::get<std::int64_t>(sink.events()[1].args[0].value), 5);
}

TEST(ObsContext, ScopedSpanEmitsOnDestructionWithAppendedArgs) {
  MemorySink sink;
  Context ctx(&sink);
  {
    ScopedSpan span(&ctx, Category::kEval, "eval.suite", {{"benchmarks", 5}});
    span.arg("cache_hit", false);
  }
  ASSERT_EQ(sink.size(), 1u);
  const Event e = sink.events()[0];
  EXPECT_STREQ(e.name, "eval.suite");
  EXPECT_EQ(e.phase, Phase::kComplete);
  EXPECT_EQ(e.domain, Domain::kHost);
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[1].key, "cache_hit");
}

TEST(ObsContext, ScopedSpanIsInertWhenNullOrMasked) {
  { ScopedSpan span(nullptr, Category::kEval, "eval.suite"); }
  MemorySink sink;
  Context ctx(&sink, static_cast<std::uint32_t>(Category::kGa));
  { ScopedSpan span(&ctx, Category::kEval, "eval.suite"); }
  EXPECT_EQ(sink.size(), 0u);
}

// --- sinks --------------------------------------------------------------

TEST(ObsSink, JsonlLinesParseAndValidate) {
  std::ostringstream os;
  {
    JsonlSink sink(os, /*buffer_bytes=*/16);  // tiny buffer: force spills
    sink.write(make_span("compile.opt", 0, 10));
    Event i;
    i.name = "vm.promote";
    i.cat = Category::kVm;
    i.phase = Phase::kInstant;
    i.domain = Domain::kSim;
    sink.write(i);
  }  // destructor flushes the tail
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    const JsonValue v = parse_json(line);
    EXPECT_EQ(validate_event(v), std::nullopt) << line;
  }
  // Two process-naming metadata events precede the two payload events.
  EXPECT_EQ(n, timebase_metadata().size() + 2);
}

TEST(ObsSink, ChromeDocumentParsesBackAsTraceEvents) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    sink.write(make_span("compile.baseline", 5, 7));
    sink.write(make_span("compile.opt", 12, 3));
  }  // destructor writes the closing bracket
  const JsonValue doc = parse_json(os.str());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->items.size(), timebase_metadata().size() + 2);
  for (const JsonValue& e : events->items) {
    EXPECT_EQ(validate_event(e), std::nullopt);
  }
  const JsonValue& last = events->items.back();
  EXPECT_EQ(last.find("name")->str, "compile.opt");
  EXPECT_EQ(last.find("dur")->as_int(), 3);
}

TEST(ObsSink, MemorySinkSnapshots) {
  MemorySink sink;
  sink.write(make_span("a", 0, 1));
  const std::vector<Event> snap = sink.events();
  sink.write(make_span("b", 1, 1));
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(sink.size(), 2u);
}

// --- schema validator ---------------------------------------------------

JsonValue event_json(const std::string& text) { return parse_json(text); }

TEST(ObsSchema, AcceptsEveryEmittedShape) {
  EXPECT_EQ(validate_event(event_json(
                R"({"name":"x","cat":"vm","ph":"i","ts":0,"pid":1,"tid":0})")),
            std::nullopt);
  EXPECT_EQ(validate_event(event_json(
                R"({"name":"x","cat":"compile","ph":"X","ts":1,"dur":2,"pid":1,"tid":0,)"
                R"("args":{"method":"main","n":3}})")),
            std::nullopt);
}

TEST(ObsSchema, RejectsMalformedRecords) {
  // Not an object.
  EXPECT_NE(validate_event(event_json("[1,2]")), std::nullopt);
  // Empty name.
  EXPECT_NE(validate_event(event_json(
                R"({"name":"","cat":"vm","ph":"i","ts":0,"pid":1,"tid":0})")),
            std::nullopt);
  // Unknown category (non-metadata).
  EXPECT_NE(validate_event(event_json(
                R"({"name":"x","cat":"nope","ph":"i","ts":0,"pid":1,"tid":0})")),
            std::nullopt);
  // Unknown phase.
  EXPECT_NE(validate_event(event_json(
                R"({"name":"x","cat":"vm","ph":"B","ts":0,"pid":1,"tid":0})")),
            std::nullopt);
  // pid outside the two timebases.
  EXPECT_NE(validate_event(event_json(
                R"({"name":"x","cat":"vm","ph":"i","ts":0,"pid":3,"tid":0})")),
            std::nullopt);
  // Complete span without dur.
  EXPECT_NE(validate_event(event_json(
                R"({"name":"x","cat":"vm","ph":"X","ts":0,"pid":1,"tid":0})")),
            std::nullopt);
  // dur on a non-span.
  EXPECT_NE(validate_event(event_json(
                R"({"name":"x","cat":"vm","ph":"i","ts":0,"dur":1,"pid":1,"tid":0})")),
            std::nullopt);
  // args value of a non-scalar type.
  EXPECT_NE(validate_event(event_json(
                R"({"name":"x","cat":"vm","ph":"i","ts":0,"pid":1,"tid":0,"args":{"k":[1]}})")),
            std::nullopt);
}

TEST(ObsSchema, CounterEventsRequireRegisteredFamilies) {
  // Every registered counter family passes...
  for (const char* key : {"vm.installs", "ga.evaluations_saved", "sig.hits", "serve.requests",
                          "resil.outcome.ok", "eval.cache_hits", "rt.fused_bodies",
                          "rt.fused_rule.load_const_cmplt_jz"}) {
    EXPECT_EQ(validate_event(event_json(std::string(R"({"name":"c","cat":"vm","ph":"C",)") +
                                        R"("ts":0,"pid":2,"tid":0,"args":{")" + key +
                                        R"(":1}})")),
              std::nullopt)
        << key;
  }
  // ...an unregistered family is rejected on counter events...
  EXPECT_NE(validate_event(event_json(
                R"({"name":"c","cat":"vm","ph":"C","ts":0,"pid":2,"tid":0,"args":{"typo.x":1}})")),
            std::nullopt);
  // ...but the same key is fine as a span/instant annotation.
  EXPECT_EQ(validate_event(event_json(
                R"({"name":"x","cat":"vm","ph":"i","ts":0,"pid":1,"tid":0,"args":{"typo.x":1}})")),
            std::nullopt);
}

}  // namespace
}  // namespace ith::obs
