// Genetic-algorithm library tests: genome space, operators, the GA driver
// (convergence, memoization, elitism, determinism), and the search baselines.
#include "ga/ga.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "ga/baselines.hpp"
#include "support/error.hpp"

namespace ith::ga {
namespace {

GenomeSpace small_space() {
  return GenomeSpace({{"a", 0, 100}, {"b", -10, 10}, {"c", 1, 1000}});
}

// A smooth minimization target with minimum at (30, -5, 400).
double sphere(const Genome& g) {
  const double dx = g[0] - 30, dy = g[1] + 5, dz = (g[2] - 400) / 10.0;
  return dx * dx + dy * dy + dz * dz;
}

// --- GenomeSpace ----------------------------------------------------------------

TEST(GenomeSpace, RandomGenomesAreValid) {
  const GenomeSpace s = small_space();
  Pcg32 rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(s.valid(s.random(rng)));
  }
}

TEST(GenomeSpace, ClampAndValidate) {
  const GenomeSpace s = small_space();
  Genome g = {500, -50, 0};
  EXPECT_FALSE(s.valid(g));
  s.clamp(g);
  EXPECT_EQ(g, (Genome{100, -10, 1}));
  EXPECT_TRUE(s.valid(g));
  EXPECT_FALSE(s.valid(Genome{1, 1}));  // wrong arity
}

TEST(GenomeSpace, Cardinality) {
  const GenomeSpace s = small_space();
  EXPECT_DOUBLE_EQ(s.cardinality(), 101.0 * 21.0 * 1000.0);
}

TEST(GenomeSpace, RejectsEmptyOrInvertedRanges) {
  EXPECT_THROW(GenomeSpace({}), Error);
  EXPECT_THROW(GenomeSpace({{"x", 5, 4}}), Error);
}

// --- Operators --------------------------------------------------------------------

TEST(Crossover, ChildGenesComeFromParents) {
  Pcg32 rng(2);
  const Genome a = {1, 2, 3, 4, 5}, b = {10, 20, 30, 40, 50};
  for (const CrossoverKind kind :
       {CrossoverKind::kOnePoint, CrossoverKind::kTwoPoint, CrossoverKind::kUniform}) {
    for (int i = 0; i < 50; ++i) {
      const Genome child = crossover(a, b, kind, rng);
      ASSERT_EQ(child.size(), a.size());
      for (std::size_t k = 0; k < child.size(); ++k) {
        EXPECT_TRUE(child[k] == a[k] || child[k] == b[k]);
      }
    }
  }
}

TEST(Crossover, OnePointPrefixFromFirstParent) {
  Pcg32 rng(3);
  const Genome a = {1, 1, 1, 1}, b = {2, 2, 2, 2};
  const Genome child = crossover(a, b, CrossoverKind::kOnePoint, rng);
  EXPECT_EQ(child.front(), 1) << "one-point children start with parent a";
}

TEST(Crossover, MismatchedArityRejected) {
  Pcg32 rng(1);
  EXPECT_THROW(crossover({1}, {1, 2}, CrossoverKind::kUniform, rng), Error);
}

TEST(Mutate, ZeroProbabilityChangesNothing) {
  const GenomeSpace s = small_space();
  Pcg32 rng(4);
  Genome g = {50, 0, 500};
  mutate(g, s, MutationKind::kReset, 0.0, rng);
  EXPECT_EQ(g, (Genome{50, 0, 500}));
}

TEST(Mutate, FullProbabilityStaysInRange) {
  const GenomeSpace s = small_space();
  Pcg32 rng(5);
  for (const MutationKind kind : {MutationKind::kReset, MutationKind::kGaussian}) {
    for (int i = 0; i < 100; ++i) {
      Genome g = {50, 0, 500};
      mutate(g, s, kind, 1.0, rng);
      EXPECT_TRUE(s.valid(g));
    }
  }
}

TEST(Mutate, GaussianMovesLocally) {
  const GenomeSpace s = GenomeSpace({{"x", 0, 1000}});
  Pcg32 rng(6);
  double total_move = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    Genome g = {500};
    mutate(g, s, MutationKind::kGaussian, 1.0, rng);
    total_move += std::abs(g[0] - 500);
  }
  EXPECT_LT(total_move / n, 250.0) << "gaussian steps should be local, not uniform redraws";
}

TEST(Selection, TournamentPrefersFitter) {
  Pcg32 rng(7);
  const std::vector<double> fitness = {10.0, 1.0, 5.0, 8.0};
  int best_wins = 0;
  for (int i = 0; i < 500; ++i) {
    if (tournament_select(fitness, 3, rng) == 1) ++best_wins;
  }
  EXPECT_GT(best_wins, 250) << "the best individual should win most tournaments of size 3";
}

TEST(Selection, TournamentSizeOneIsUniform) {
  Pcg32 rng(8);
  const std::vector<double> fitness = {10.0, 1.0};
  int picks0 = 0;
  for (int i = 0; i < 1000; ++i) {
    if (tournament_select(fitness, 1, rng) == 0) ++picks0;
  }
  EXPECT_NEAR(picks0, 500, 100);
}

TEST(Selection, RoulettePrefersFitter) {
  Pcg32 rng(9);
  const std::vector<double> fitness = {10.0, 1.0, 9.0};
  std::vector<int> picks(3, 0);
  for (int i = 0; i < 2000; ++i) ++picks[roulette_select(fitness, rng)];
  EXPECT_GT(picks[1], picks[0]);
  EXPECT_GT(picks[1], picks[2]);
}

// --- GeneticAlgorithm ---------------------------------------------------------------

TEST(Ga, ConvergesOnSphere) {
  GaConfig cfg;
  cfg.population = 20;
  cfg.generations = 60;
  cfg.seed = 42;
  GeneticAlgorithm algo(small_space(), sphere, cfg);
  const GaResult r = algo.run();
  EXPECT_LT(r.best_fitness, 30.0) << "GA should get close to the optimum";
  EXPECT_TRUE(small_space().valid(r.best));
}

TEST(Ga, BeatsInitialGeneration) {
  GaConfig cfg;
  cfg.generations = 30;
  cfg.seed = 1;
  GeneticAlgorithm algo(small_space(), sphere, cfg);
  const GaResult r = algo.run();
  EXPECT_LT(r.best_fitness, r.history.front().best);
}

TEST(Ga, DeterministicForSeed) {
  GaConfig cfg;
  cfg.generations = 15;
  cfg.seed = 7;
  GeneticAlgorithm a(small_space(), sphere, cfg);
  GeneticAlgorithm b(small_space(), sphere, cfg);
  const GaResult ra = a.run(), rb = b.run();
  EXPECT_EQ(ra.best, rb.best);
  EXPECT_DOUBLE_EQ(ra.best_fitness, rb.best_fitness);
}

TEST(Ga, DifferentSeedsExploreDifferently) {
  GaConfig cfg;
  cfg.generations = 5;
  cfg.seed = 1;
  GeneticAlgorithm a(small_space(), sphere, cfg);
  cfg.seed = 2;
  GeneticAlgorithm b(small_space(), sphere, cfg);
  EXPECT_NE(a.run().history.front().best_genome, b.run().history.front().best_genome);
}

TEST(Ga, MemoizationAvoidsReevaluation) {
  std::atomic<int> calls{0};
  auto counting = [&calls](const Genome& g) {
    calls.fetch_add(1);
    return sphere(g);
  };
  GaConfig cfg;
  cfg.generations = 40;
  cfg.seed = 3;
  cfg.memoize = true;
  GeneticAlgorithm algo(small_space(), counting, cfg);
  const GaResult r = algo.run();
  EXPECT_EQ(static_cast<std::size_t>(calls.load()), r.evaluations);
  EXPECT_GT(r.cache_hits, 0u) << "elites alone guarantee repeat genomes";
  EXPECT_LT(r.evaluations, static_cast<std::size_t>(cfg.population * cfg.generations));
}

TEST(Ga, ElitismPreservesBestAcrossGenerations) {
  GaConfig cfg;
  cfg.generations = 25;
  cfg.seed = 4;
  cfg.elites = 2;
  GeneticAlgorithm algo(small_space(), sphere, cfg);
  const GaResult r = algo.run();
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best, r.history[i - 1].best + 1e-12)
        << "with elitism the generation best never regresses";
  }
}

TEST(Ga, PatienceStopsEarly) {
  GaConfig cfg;
  cfg.generations = 500;
  cfg.seed = 5;
  cfg.patience = 5;
  GeneticAlgorithm algo(small_space(), sphere, cfg);
  const GaResult r = algo.run();
  EXPECT_LT(r.history.size(), 500u);
}

TEST(Ga, SeedIndividualsEnterInitialPopulation) {
  const Genome seed_genome = {30, -5, 400};  // the optimum
  GaConfig cfg;
  cfg.generations = 1;
  cfg.seed_individuals = {seed_genome};
  GeneticAlgorithm algo(small_space(), sphere, cfg);
  const GaResult r = algo.run();
  EXPECT_DOUBLE_EQ(r.best_fitness, 0.0);
  EXPECT_EQ(r.best, seed_genome);
}

TEST(Ga, InvalidSeedIndividualRejected) {
  GaConfig cfg;
  cfg.seed_individuals = {{9999, 0, 1}};
  EXPECT_THROW(GeneticAlgorithm(small_space(), sphere, cfg), Error);
}

TEST(Ga, ConfigValidation) {
  GaConfig cfg;
  cfg.population = 1;
  EXPECT_THROW(GeneticAlgorithm(small_space(), sphere, cfg), Error);
  cfg = GaConfig{};
  cfg.elites = cfg.population;
  EXPECT_THROW(GeneticAlgorithm(small_space(), sphere, cfg), Error);
  cfg = GaConfig{};
  cfg.crossover_rate = 1.5;
  EXPECT_THROW(GeneticAlgorithm(small_space(), sphere, cfg), Error);
  EXPECT_THROW(GeneticAlgorithm(small_space(), nullptr, GaConfig{}), Error);
}

TEST(Ga, ProgressCallbackSeesEveryGeneration) {
  GaConfig cfg;
  cfg.generations = 10;
  cfg.patience = 0;
  GeneticAlgorithm algo(small_space(), sphere, cfg);
  int called = 0;
  algo.set_progress([&called](const GenerationStats& gs) {
    EXPECT_EQ(gs.generation, called);
    ++called;
  });
  algo.run();
  EXPECT_EQ(called, 10);
}

TEST(Ga, ParallelEvaluationMatchesSerial) {
  GaConfig cfg;
  cfg.generations = 10;
  cfg.seed = 11;
  cfg.threads = 1;
  GeneticAlgorithm serial(small_space(), sphere, cfg);
  cfg.threads = 4;
  GeneticAlgorithm parallel(small_space(), sphere, cfg);
  const GaResult rs = serial.run(), rp = parallel.run();
  EXPECT_EQ(rs.best, rp.best);
  EXPECT_DOUBLE_EQ(rs.best_fitness, rp.best_fitness);
}

TEST(Ga, RouletteSelectionAlsoConverges) {
  GaConfig cfg;
  cfg.generations = 60;
  cfg.seed = 12;
  cfg.selection = SelectionKind::kRoulette;
  GeneticAlgorithm algo(small_space(), sphere, cfg);
  EXPECT_LT(algo.run().best_fitness, 100.0);
}

// --- Baselines -------------------------------------------------------------------------

TEST(RandomSearch, RespectsBudgetAndImproves) {
  const SearchResult r = random_search(small_space(), sphere, 300, 1);
  EXPECT_EQ(r.evaluations, 300u);
  EXPECT_EQ(r.trajectory.size(), 300u);
  EXPECT_LE(r.trajectory.back(), r.trajectory.front());
  for (std::size_t i = 1; i < r.trajectory.size(); ++i) {
    EXPECT_LE(r.trajectory[i], r.trajectory[i - 1]) << "anytime curve is monotone";
  }
}

TEST(HillClimb, RespectsBudgetAndImproves) {
  const SearchResult r = hill_climb(small_space(), sphere, 300, 1);
  EXPECT_GE(r.evaluations, 300u);
  EXPECT_LE(r.trajectory.back(), r.trajectory.front());
}

TEST(HillClimb, BeatsRandomOnSmoothLandscape) {
  double hc_sum = 0, rs_sum = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    hc_sum += hill_climb(small_space(), sphere, 200, seed).best_fitness;
    rs_sum += random_search(small_space(), sphere, 200, seed).best_fitness;
  }
  EXPECT_LT(hc_sum, rs_sum) << "local search should beat random sampling on a sphere";
}

TEST(Baselines, ZeroBudgetRejected) {
  EXPECT_THROW(random_search(small_space(), sphere, 0, 1), Error);
  EXPECT_THROW(hill_climb(small_space(), sphere, 0, 1), Error);
}

}  // namespace
}  // namespace ith::ga
