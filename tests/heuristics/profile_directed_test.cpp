#include "heuristics/profile_directed.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "testing.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

namespace ith::heur {
namespace {

InlineRequest site(std::uint64_t count, int callee_size, int depth = 0) {
  InlineRequest r;
  r.site_count = count;
  r.is_hot = count > 0;
  r.callee_size = callee_size;
  r.depth = depth;
  return r;
}

TEST(ProfileDirected, ColdSitesNeverInlined) {
  ProfileDirectedHeuristic h;
  EXPECT_FALSE(h.should_inline(site(0, 1)));
}

TEST(ProfileDirected, BenefitMustCoverCost) {
  // benefit = count * 12, cost = 60 * size: break-even at count = 5 * size.
  ProfileDirectedHeuristic h(12.0, 60.0);
  EXPECT_TRUE(h.should_inline(site(100, 20)));   // 1200 >= 1200
  EXPECT_FALSE(h.should_inline(site(99, 20)));   // 1188 < 1200
  EXPECT_TRUE(h.should_inline(site(5, 1)));
  EXPECT_FALSE(h.should_inline(site(4, 1)));
}

TEST(ProfileDirected, HugeCountsSwallowBigCallees) {
  ProfileDirectedHeuristic h;
  EXPECT_TRUE(h.should_inline(site(1'000'000, 400)));
}

TEST(ProfileDirected, DepthCapHolds) {
  ProfileDirectedHeuristic h(12.0, 60.0, /*depth_cap=*/3);
  EXPECT_TRUE(h.should_inline(site(100000, 10, 3)));
  EXPECT_FALSE(h.should_inline(site(100000, 10, 4)));
}

TEST(ProfileDirected, RejectsBadWeights) {
  EXPECT_THROW(ProfileDirectedHeuristic(0.0, 1.0), ith::Error);
  EXPECT_THROW(ProfileDirectedHeuristic(1.0, -1.0), ith::Error);
  EXPECT_THROW(ProfileDirectedHeuristic(1.0, 1.0, -1), ith::Error);
}

TEST(ProfileDirected, UnderAdaptBeatsNeverInlineOnRunningTime) {
  // End-to-end: with live profiles it should recover much of the inlining
  // benefit on a loop-dominated program.
  const wl::Workload w = wl::make_workload("compress");
  const rt::MachineModel machine = rt::pentium4_model();
  auto running_with = [&](InlineHeuristic& h) {
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kAdapt;
    vm::VirtualMachine m(w.program, machine, h, cfg);
    return m.run(2).running_cycles;
  };
  ProfileDirectedHeuristic pd;
  NeverInlineHeuristic never;
  EXPECT_LT(running_with(pd), running_with(never));
}

TEST(ProfileDirected, UnderOptDegeneratesToNeverInline) {
  // No profile exists under Opt; the heuristic must not inline anything,
  // matching its documented cold-code behaviour.
  const wl::Workload w = wl::make_workload("raytrace");
  const rt::MachineModel machine = rt::pentium4_model();
  auto total_with = [&](InlineHeuristic& h) {
    vm::VmConfig cfg;
    cfg.scenario = vm::Scenario::kOpt;
    vm::VirtualMachine m(w.program, machine, h, cfg);
    return m.run(2).total_cycles;
  };
  ProfileDirectedHeuristic pd;
  NeverInlineHeuristic never;
  EXPECT_EQ(total_with(pd), total_with(never));
}

}  // namespace
}  // namespace ith::heur
