// Tests for the paper's heuristic (Figures 3 and 4), the parameter space
// (Table 1), and the knapsack-oracle comparator.
#include <gtest/gtest.h>

#include "bytecode/size_estimator.hpp"
#include "heuristics/heuristic.hpp"
#include "heuristics/inline_params.hpp"
#include "heuristics/knapsack.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace ith::heur {
namespace {

InlineRequest req(int callee_size, int depth, int caller_size, bool hot = false) {
  InlineRequest r;
  r.callee_size = callee_size;
  r.depth = depth;
  r.caller_size = caller_size;
  r.is_hot = hot;
  return r;
}

// --- InlineParams / Table 1 ---------------------------------------------------

TEST(InlineParams, DefaultsMatchPaperTable4) {
  const InlineParams d = default_params();
  EXPECT_EQ(d.callee_max_size, 23);
  EXPECT_EQ(d.always_inline_size, 11);
  EXPECT_EQ(d.max_inline_depth, 5);
  EXPECT_EQ(d.caller_max_size, 2048);
  EXPECT_EQ(d.hot_callee_max_size, 135);
}

TEST(InlineParams, ArrayRoundTrip) {
  InlineParams p;
  p.callee_max_size = 49;
  p.always_inline_size = 15;
  p.max_inline_depth = 10;
  p.caller_max_size = 60;
  p.hot_callee_max_size = 138;
  EXPECT_EQ(InlineParams::from_array(p.to_array()), p);
}

TEST(InlineParams, FlattenedKeyBridgeCoversEveryField) {
  // Everything keyed on the flattened form (GA genome, SuiteEvaluator
  // memoization) sizes itself from kNumParams; the sizeof static_assert in
  // the header refuses a sixth field until kNumParams grows. Here: each
  // struct field must map onto exactly one distinct array slot, so two
  // params differing in any field can never share a cache key.
  static_assert(std::tuple_size_v<InlineParams::Array> == InlineParams::kNumParams);
  EXPECT_EQ(param_ranges().size(), InlineParams::kNumParams);

  const InlineParams base = default_params();
  const InlineParams::Array flat = base.to_array();
  std::array<InlineParams, InlineParams::kNumParams> mutants{base, base, base,
                                                             base, base, base};
  mutants[0].callee_max_size += 1;
  mutants[1].always_inline_size += 1;
  mutants[2].max_inline_depth += 1;
  mutants[3].caller_max_size += 1;
  mutants[4].hot_callee_max_size += 1;
  mutants[5].partial_max_head_size += 1;

  std::array<bool, InlineParams::kNumParams> slot_hit{};
  for (std::size_t f = 0; f < mutants.size(); ++f) {
    const InlineParams::Array got = mutants[f].to_array();
    std::size_t changed = 0;
    std::size_t where = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != flat[i]) {
        ++changed;
        where = i;
      }
    }
    ASSERT_EQ(changed, 1u) << "field " << f << " must occupy exactly one key slot";
    EXPECT_FALSE(slot_hit[where]) << "field " << f << " aliases another field's slot";
    slot_hit[where] = true;
  }
}

TEST(InlineParams, RangesMatchPaperTable1) {
  const auto& r = param_ranges();
  EXPECT_STREQ(r[0].name, "CALLEE_MAX_SIZE");
  EXPECT_EQ(r[0].lo, 1);
  EXPECT_EQ(r[0].hi, 50);
  EXPECT_STREQ(r[2].name, "MAX_INLINE_DEPTH");
  EXPECT_EQ(r[2].hi, 15);
  EXPECT_STREQ(r[3].name, "CALLER_MAX_SIZE");
  EXPECT_EQ(r[3].hi, 4000);
  EXPECT_STREQ(r[4].name, "HOT_CALLEE_MAX_SIZE");
  EXPECT_EQ(r[4].hi, 400);
}

TEST(InlineParams, SearchSpaceIsIntractablyLarge) {
  // The paper quotes ~3x10^11 possible settings; with the reconstructed
  // ALWAYS_INLINE_SIZE range the five-parameter space is ~3.6e10, and the
  // sixth dimension (PARTIAL_MAX_HEAD_SIZE, 0..40) multiplies it to ~1.5e12
  // — still the "exhaustive search is intractable" regime (see the comment
  // in inline_params.cpp).
  double card = 1.0;
  for (const auto& r : param_ranges()) card *= static_cast<double>(r.hi - r.lo + 1);
  EXPECT_GT(card, 1e10);
  EXPECT_LT(card, 1e13);
}

TEST(InlineParams, ClampPullsIntoRange) {
  InlineParams p;
  p.callee_max_size = 999;
  p.max_inline_depth = 0;
  p.caller_max_size = -5;
  const InlineParams c = clamp_to_ranges(p);
  EXPECT_EQ(c.callee_max_size, 50);
  EXPECT_EQ(c.max_inline_depth, 1);
  EXPECT_EQ(c.caller_max_size, 1);
}

// --- JikesHeuristic: Figure 3 test order --------------------------------------

TEST(JikesHeuristic, RejectsLargeCallee) {
  JikesHeuristic h;
  EXPECT_FALSE(h.should_inline(req(/*callee=*/24, 0, 10)));
  EXPECT_TRUE(h.should_inline(req(23, 0, 10)));
}

TEST(JikesHeuristic, AlwaysInlinesTinyCalleeRegardlessOfDepthAndCaller) {
  JikesHeuristic h;
  // calleeSize < ALWAYS_INLINE_SIZE short-circuits the depth & caller tests.
  EXPECT_TRUE(h.should_inline(req(10, /*depth=*/99, /*caller=*/999999)));
}

TEST(JikesHeuristic, DepthLimitApplies) {
  JikesHeuristic h;
  EXPECT_TRUE(h.should_inline(req(20, 5, 10)));
  EXPECT_FALSE(h.should_inline(req(20, 6, 10)));
}

TEST(JikesHeuristic, CallerSizeLimitApplies) {
  JikesHeuristic h;
  EXPECT_TRUE(h.should_inline(req(20, 0, 2048)));
  EXPECT_FALSE(h.should_inline(req(20, 0, 2049)));
}

TEST(JikesHeuristic, TestOrderMattersLargeCalleeBeatsTinyDepth) {
  // A callee over CALLEE_MAX_SIZE is rejected even at depth 0 in a tiny
  // caller — the first test fires before any other consideration.
  JikesHeuristic h;
  EXPECT_FALSE(h.should_inline(req(1000, 0, 1)));
}

TEST(JikesHeuristic, HotSiteUsesFigure4Only) {
  JikesHeuristic h;
  // Hot: only HOT_CALLEE_MAX_SIZE matters; depth/caller ignored.
  EXPECT_TRUE(h.should_inline(req(135, 99, 999999, /*hot=*/true)));
  EXPECT_FALSE(h.should_inline(req(136, 0, 1, /*hot=*/true)));
}

TEST(JikesHeuristic, CustomParamsRespected) {
  InlineParams p = default_params();
  p.callee_max_size = 5;
  p.always_inline_size = 1;
  JikesHeuristic h(p);
  EXPECT_FALSE(h.should_inline(req(6, 0, 10)));
  EXPECT_TRUE(h.should_inline(req(5, 0, 10)));
}

// --- Trivial heuristics ---------------------------------------------------------

TEST(TrivialHeuristics, NeverAndAlways) {
  NeverInlineHeuristic never;
  EXPECT_FALSE(never.should_inline(req(1, 0, 1)));
  AlwaysInlineHeuristic always(10);
  EXPECT_TRUE(always.should_inline(req(100000, 10, 100000)));
  EXPECT_FALSE(always.should_inline(req(1, 11, 1)));  // depth cap only
}

TEST(Factories, ProduceWorkingHeuristics) {
  EXPECT_TRUE(make_jikes()->should_inline(req(5, 0, 5)));
  EXPECT_FALSE(make_never()->should_inline(req(5, 0, 5)));
  EXPECT_TRUE(make_always()->should_inline(req(500, 0, 5)));
}

// --- Knapsack oracle -------------------------------------------------------------

TEST(Knapsack, SelectsWithinBudget) {
  const bc::Program p = ith::test::make_loop_program(10);
  KnapsackHeuristic h(0.10);
  h.prepare(p);
  EXPECT_GE(h.selected_sites(), 1u);  // the hot loop call should fit a 10% budget
}

TEST(Knapsack, ZeroBudgetSelectsNothing) {
  const bc::Program p = ith::test::make_loop_program(10);
  KnapsackHeuristic h(0.0);
  h.prepare(p);
  EXPECT_EQ(h.selected_sites(), 0u);
}

TEST(Knapsack, HugeBudgetSelectsAllSites) {
  const bc::Program p = ith::test::make_fib_program(5);
  KnapsackHeuristic h(100.0);
  h.prepare(p);
  std::size_t all_sites = 0;
  for (const auto& m : p.methods()) all_sites += m.call_sites().size();
  EXPECT_EQ(h.selected_sites(), all_sites);
}

TEST(Knapsack, OnlyDecidesOriginalDepth) {
  const bc::Program p = ith::test::make_loop_program(10);
  KnapsackHeuristic h(1.0);
  h.prepare(p);
  InlineRequest r;
  r.caller = p.entry();
  r.callee = p.find_method("square");
  r.call_pc = p.method(p.entry()).call_sites().front();
  r.depth = 1;  // sites created by inlining are not in the oracle's plan
  EXPECT_FALSE(h.should_inline(r));
}

TEST(Knapsack, RejectsNegativeBudget) { EXPECT_THROW(KnapsackHeuristic(-0.1), ith::Error); }

TEST(StaticLoopDepth, CountsEnclosingLoops) {
  const bc::Program p = ith::test::make_loop_program(10);
  const bc::Method& m = p.method(p.entry());
  const std::size_t call_pc = m.call_sites().front();
  EXPECT_EQ(static_loop_depth(m, call_pc), 1);       // inside the one loop
  EXPECT_EQ(static_loop_depth(m, m.size() - 1), 0);  // halt after the loop
}

}  // namespace
}  // namespace ith::heur
