# Empty compiler generated dependencies file for explore_heuristics.
# This may be replaced when dependencies are built.
