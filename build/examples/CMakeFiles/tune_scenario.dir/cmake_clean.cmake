file(REMOVE_RECURSE
  "CMakeFiles/tune_scenario.dir/tune_scenario.cpp.o"
  "CMakeFiles/tune_scenario.dir/tune_scenario.cpp.o.d"
  "tune_scenario"
  "tune_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
