# Empty dependencies file for tune_scenario.
# This may be replaced when dependencies are built.
