# Empty compiler generated dependencies file for inspect_workloads.
# This may be replaced when dependencies are built.
