file(REMOVE_RECURSE
  "CMakeFiles/ith_opt.dir/annotated.cpp.o"
  "CMakeFiles/ith_opt.dir/annotated.cpp.o.d"
  "CMakeFiles/ith_opt.dir/inliner.cpp.o"
  "CMakeFiles/ith_opt.dir/inliner.cpp.o.d"
  "CMakeFiles/ith_opt.dir/optimizer.cpp.o"
  "CMakeFiles/ith_opt.dir/optimizer.cpp.o.d"
  "CMakeFiles/ith_opt.dir/passes.cpp.o"
  "CMakeFiles/ith_opt.dir/passes.cpp.o.d"
  "libith_opt.a"
  "libith_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
