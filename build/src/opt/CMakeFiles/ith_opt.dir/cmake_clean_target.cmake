file(REMOVE_RECURSE
  "libith_opt.a"
)
