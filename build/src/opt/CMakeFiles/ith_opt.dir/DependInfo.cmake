
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/annotated.cpp" "src/opt/CMakeFiles/ith_opt.dir/annotated.cpp.o" "gcc" "src/opt/CMakeFiles/ith_opt.dir/annotated.cpp.o.d"
  "/root/repo/src/opt/inliner.cpp" "src/opt/CMakeFiles/ith_opt.dir/inliner.cpp.o" "gcc" "src/opt/CMakeFiles/ith_opt.dir/inliner.cpp.o.d"
  "/root/repo/src/opt/optimizer.cpp" "src/opt/CMakeFiles/ith_opt.dir/optimizer.cpp.o" "gcc" "src/opt/CMakeFiles/ith_opt.dir/optimizer.cpp.o.d"
  "/root/repo/src/opt/passes.cpp" "src/opt/CMakeFiles/ith_opt.dir/passes.cpp.o" "gcc" "src/opt/CMakeFiles/ith_opt.dir/passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/ith_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/ith_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ith_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
