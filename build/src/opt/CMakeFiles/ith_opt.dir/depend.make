# Empty dependencies file for ith_opt.
# This may be replaced when dependencies are built.
