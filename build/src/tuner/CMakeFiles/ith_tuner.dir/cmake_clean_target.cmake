file(REMOVE_RECURSE
  "libith_tuner.a"
)
