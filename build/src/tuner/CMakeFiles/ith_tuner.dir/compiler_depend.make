# Empty compiler generated dependencies file for ith_tuner.
# This may be replaced when dependencies are built.
