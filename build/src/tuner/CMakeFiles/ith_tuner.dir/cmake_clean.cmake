file(REMOVE_RECURSE
  "CMakeFiles/ith_tuner.dir/evaluator.cpp.o"
  "CMakeFiles/ith_tuner.dir/evaluator.cpp.o.d"
  "CMakeFiles/ith_tuner.dir/fitness.cpp.o"
  "CMakeFiles/ith_tuner.dir/fitness.cpp.o.d"
  "CMakeFiles/ith_tuner.dir/parameter_space.cpp.o"
  "CMakeFiles/ith_tuner.dir/parameter_space.cpp.o.d"
  "CMakeFiles/ith_tuner.dir/report.cpp.o"
  "CMakeFiles/ith_tuner.dir/report.cpp.o.d"
  "CMakeFiles/ith_tuner.dir/tuner.cpp.o"
  "CMakeFiles/ith_tuner.dir/tuner.cpp.o.d"
  "libith_tuner.a"
  "libith_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
