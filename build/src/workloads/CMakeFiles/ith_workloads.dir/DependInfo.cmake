
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dacapo_programs.cpp" "src/workloads/CMakeFiles/ith_workloads.dir/dacapo_programs.cpp.o" "gcc" "src/workloads/CMakeFiles/ith_workloads.dir/dacapo_programs.cpp.o.d"
  "/root/repo/src/workloads/shapes.cpp" "src/workloads/CMakeFiles/ith_workloads.dir/shapes.cpp.o" "gcc" "src/workloads/CMakeFiles/ith_workloads.dir/shapes.cpp.o.d"
  "/root/repo/src/workloads/spec_programs.cpp" "src/workloads/CMakeFiles/ith_workloads.dir/spec_programs.cpp.o" "gcc" "src/workloads/CMakeFiles/ith_workloads.dir/spec_programs.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/ith_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/ith_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/ith_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/ith_workloads.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/ith_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ith_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
