file(REMOVE_RECURSE
  "CMakeFiles/ith_workloads.dir/dacapo_programs.cpp.o"
  "CMakeFiles/ith_workloads.dir/dacapo_programs.cpp.o.d"
  "CMakeFiles/ith_workloads.dir/shapes.cpp.o"
  "CMakeFiles/ith_workloads.dir/shapes.cpp.o.d"
  "CMakeFiles/ith_workloads.dir/spec_programs.cpp.o"
  "CMakeFiles/ith_workloads.dir/spec_programs.cpp.o.d"
  "CMakeFiles/ith_workloads.dir/suite.cpp.o"
  "CMakeFiles/ith_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/ith_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/ith_workloads.dir/synthetic.cpp.o.d"
  "libith_workloads.a"
  "libith_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
