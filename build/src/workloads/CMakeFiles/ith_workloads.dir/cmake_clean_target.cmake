file(REMOVE_RECURSE
  "libith_workloads.a"
)
