# Empty dependencies file for ith_workloads.
# This may be replaced when dependencies are built.
