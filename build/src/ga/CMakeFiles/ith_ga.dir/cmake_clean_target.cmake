file(REMOVE_RECURSE
  "libith_ga.a"
)
