file(REMOVE_RECURSE
  "CMakeFiles/ith_ga.dir/baselines.cpp.o"
  "CMakeFiles/ith_ga.dir/baselines.cpp.o.d"
  "CMakeFiles/ith_ga.dir/ga.cpp.o"
  "CMakeFiles/ith_ga.dir/ga.cpp.o.d"
  "CMakeFiles/ith_ga.dir/genome.cpp.o"
  "CMakeFiles/ith_ga.dir/genome.cpp.o.d"
  "CMakeFiles/ith_ga.dir/operators.cpp.o"
  "CMakeFiles/ith_ga.dir/operators.cpp.o.d"
  "libith_ga.a"
  "libith_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
