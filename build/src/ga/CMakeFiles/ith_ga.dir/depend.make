# Empty dependencies file for ith_ga.
# This may be replaced when dependencies are built.
