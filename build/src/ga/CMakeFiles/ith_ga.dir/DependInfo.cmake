
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ga/baselines.cpp" "src/ga/CMakeFiles/ith_ga.dir/baselines.cpp.o" "gcc" "src/ga/CMakeFiles/ith_ga.dir/baselines.cpp.o.d"
  "/root/repo/src/ga/ga.cpp" "src/ga/CMakeFiles/ith_ga.dir/ga.cpp.o" "gcc" "src/ga/CMakeFiles/ith_ga.dir/ga.cpp.o.d"
  "/root/repo/src/ga/genome.cpp" "src/ga/CMakeFiles/ith_ga.dir/genome.cpp.o" "gcc" "src/ga/CMakeFiles/ith_ga.dir/genome.cpp.o.d"
  "/root/repo/src/ga/operators.cpp" "src/ga/CMakeFiles/ith_ga.dir/operators.cpp.o" "gcc" "src/ga/CMakeFiles/ith_ga.dir/operators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ith_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
