file(REMOVE_RECURSE
  "libith_bytecode.a"
)
