
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/analysis.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/analysis.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/analysis.cpp.o.d"
  "/root/repo/src/bytecode/binary.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/binary.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/binary.cpp.o.d"
  "/root/repo/src/bytecode/builder.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/builder.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/builder.cpp.o.d"
  "/root/repo/src/bytecode/instruction.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/instruction.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/instruction.cpp.o.d"
  "/root/repo/src/bytecode/method.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/method.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/method.cpp.o.d"
  "/root/repo/src/bytecode/program.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/program.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/program.cpp.o.d"
  "/root/repo/src/bytecode/serializer.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/serializer.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/serializer.cpp.o.d"
  "/root/repo/src/bytecode/size_estimator.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/size_estimator.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/size_estimator.cpp.o.d"
  "/root/repo/src/bytecode/verifier.cpp" "src/bytecode/CMakeFiles/ith_bytecode.dir/verifier.cpp.o" "gcc" "src/bytecode/CMakeFiles/ith_bytecode.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ith_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
