# Empty compiler generated dependencies file for ith_bytecode.
# This may be replaced when dependencies are built.
