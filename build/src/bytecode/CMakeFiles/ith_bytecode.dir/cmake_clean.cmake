file(REMOVE_RECURSE
  "CMakeFiles/ith_bytecode.dir/analysis.cpp.o"
  "CMakeFiles/ith_bytecode.dir/analysis.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/binary.cpp.o"
  "CMakeFiles/ith_bytecode.dir/binary.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/builder.cpp.o"
  "CMakeFiles/ith_bytecode.dir/builder.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/instruction.cpp.o"
  "CMakeFiles/ith_bytecode.dir/instruction.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/method.cpp.o"
  "CMakeFiles/ith_bytecode.dir/method.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/program.cpp.o"
  "CMakeFiles/ith_bytecode.dir/program.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/serializer.cpp.o"
  "CMakeFiles/ith_bytecode.dir/serializer.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/size_estimator.cpp.o"
  "CMakeFiles/ith_bytecode.dir/size_estimator.cpp.o.d"
  "CMakeFiles/ith_bytecode.dir/verifier.cpp.o"
  "CMakeFiles/ith_bytecode.dir/verifier.cpp.o.d"
  "libith_bytecode.a"
  "libith_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
