# Empty compiler generated dependencies file for ith_support.
# This may be replaced when dependencies are built.
