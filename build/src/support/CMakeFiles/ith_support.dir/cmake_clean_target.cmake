file(REMOVE_RECURSE
  "libith_support.a"
)
