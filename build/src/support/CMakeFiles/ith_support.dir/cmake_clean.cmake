file(REMOVE_RECURSE
  "CMakeFiles/ith_support.dir/cli.cpp.o"
  "CMakeFiles/ith_support.dir/cli.cpp.o.d"
  "CMakeFiles/ith_support.dir/csv.cpp.o"
  "CMakeFiles/ith_support.dir/csv.cpp.o.d"
  "CMakeFiles/ith_support.dir/env.cpp.o"
  "CMakeFiles/ith_support.dir/env.cpp.o.d"
  "CMakeFiles/ith_support.dir/rng.cpp.o"
  "CMakeFiles/ith_support.dir/rng.cpp.o.d"
  "CMakeFiles/ith_support.dir/statistics.cpp.o"
  "CMakeFiles/ith_support.dir/statistics.cpp.o.d"
  "CMakeFiles/ith_support.dir/table.cpp.o"
  "CMakeFiles/ith_support.dir/table.cpp.o.d"
  "CMakeFiles/ith_support.dir/thread_pool.cpp.o"
  "CMakeFiles/ith_support.dir/thread_pool.cpp.o.d"
  "libith_support.a"
  "libith_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
