file(REMOVE_RECURSE
  "CMakeFiles/ith_runtime.dir/compiled.cpp.o"
  "CMakeFiles/ith_runtime.dir/compiled.cpp.o.d"
  "CMakeFiles/ith_runtime.dir/icache.cpp.o"
  "CMakeFiles/ith_runtime.dir/icache.cpp.o.d"
  "CMakeFiles/ith_runtime.dir/interpreter.cpp.o"
  "CMakeFiles/ith_runtime.dir/interpreter.cpp.o.d"
  "CMakeFiles/ith_runtime.dir/machine.cpp.o"
  "CMakeFiles/ith_runtime.dir/machine.cpp.o.d"
  "CMakeFiles/ith_runtime.dir/profile.cpp.o"
  "CMakeFiles/ith_runtime.dir/profile.cpp.o.d"
  "libith_runtime.a"
  "libith_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
