file(REMOVE_RECURSE
  "libith_runtime.a"
)
