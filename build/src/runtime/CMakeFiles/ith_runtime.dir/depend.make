# Empty dependencies file for ith_runtime.
# This may be replaced when dependencies are built.
