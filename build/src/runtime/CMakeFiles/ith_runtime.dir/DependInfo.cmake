
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/compiled.cpp" "src/runtime/CMakeFiles/ith_runtime.dir/compiled.cpp.o" "gcc" "src/runtime/CMakeFiles/ith_runtime.dir/compiled.cpp.o.d"
  "/root/repo/src/runtime/icache.cpp" "src/runtime/CMakeFiles/ith_runtime.dir/icache.cpp.o" "gcc" "src/runtime/CMakeFiles/ith_runtime.dir/icache.cpp.o.d"
  "/root/repo/src/runtime/interpreter.cpp" "src/runtime/CMakeFiles/ith_runtime.dir/interpreter.cpp.o" "gcc" "src/runtime/CMakeFiles/ith_runtime.dir/interpreter.cpp.o.d"
  "/root/repo/src/runtime/machine.cpp" "src/runtime/CMakeFiles/ith_runtime.dir/machine.cpp.o" "gcc" "src/runtime/CMakeFiles/ith_runtime.dir/machine.cpp.o.d"
  "/root/repo/src/runtime/profile.cpp" "src/runtime/CMakeFiles/ith_runtime.dir/profile.cpp.o" "gcc" "src/runtime/CMakeFiles/ith_runtime.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/ith_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ith_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
