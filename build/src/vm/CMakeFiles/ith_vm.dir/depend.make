# Empty dependencies file for ith_vm.
# This may be replaced when dependencies are built.
