file(REMOVE_RECURSE
  "CMakeFiles/ith_vm.dir/vm.cpp.o"
  "CMakeFiles/ith_vm.dir/vm.cpp.o.d"
  "libith_vm.a"
  "libith_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
