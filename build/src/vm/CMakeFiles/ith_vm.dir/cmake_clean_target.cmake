file(REMOVE_RECURSE
  "libith_vm.a"
)
