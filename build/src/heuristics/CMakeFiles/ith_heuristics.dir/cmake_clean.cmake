file(REMOVE_RECURSE
  "CMakeFiles/ith_heuristics.dir/heuristic.cpp.o"
  "CMakeFiles/ith_heuristics.dir/heuristic.cpp.o.d"
  "CMakeFiles/ith_heuristics.dir/inline_params.cpp.o"
  "CMakeFiles/ith_heuristics.dir/inline_params.cpp.o.d"
  "CMakeFiles/ith_heuristics.dir/knapsack.cpp.o"
  "CMakeFiles/ith_heuristics.dir/knapsack.cpp.o.d"
  "CMakeFiles/ith_heuristics.dir/profile_directed.cpp.o"
  "CMakeFiles/ith_heuristics.dir/profile_directed.cpp.o.d"
  "libith_heuristics.a"
  "libith_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
