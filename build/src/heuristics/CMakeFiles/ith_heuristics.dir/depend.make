# Empty dependencies file for ith_heuristics.
# This may be replaced when dependencies are built.
