file(REMOVE_RECURSE
  "libith_heuristics.a"
)
