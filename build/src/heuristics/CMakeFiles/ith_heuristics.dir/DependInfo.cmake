
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heuristics/heuristic.cpp" "src/heuristics/CMakeFiles/ith_heuristics.dir/heuristic.cpp.o" "gcc" "src/heuristics/CMakeFiles/ith_heuristics.dir/heuristic.cpp.o.d"
  "/root/repo/src/heuristics/inline_params.cpp" "src/heuristics/CMakeFiles/ith_heuristics.dir/inline_params.cpp.o" "gcc" "src/heuristics/CMakeFiles/ith_heuristics.dir/inline_params.cpp.o.d"
  "/root/repo/src/heuristics/knapsack.cpp" "src/heuristics/CMakeFiles/ith_heuristics.dir/knapsack.cpp.o" "gcc" "src/heuristics/CMakeFiles/ith_heuristics.dir/knapsack.cpp.o.d"
  "/root/repo/src/heuristics/profile_directed.cpp" "src/heuristics/CMakeFiles/ith_heuristics.dir/profile_directed.cpp.o" "gcc" "src/heuristics/CMakeFiles/ith_heuristics.dir/profile_directed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/ith_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ith_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
