file(REMOVE_RECURSE
  "CMakeFiles/ith_integration_test.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/ith_integration_test.dir/integration/pipeline_test.cpp.o.d"
  "ith_integration_test"
  "ith_integration_test.pdb"
  "ith_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
