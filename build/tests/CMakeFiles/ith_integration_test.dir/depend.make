# Empty dependencies file for ith_integration_test.
# This may be replaced when dependencies are built.
