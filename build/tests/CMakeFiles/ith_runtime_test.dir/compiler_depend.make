# Empty compiler generated dependencies file for ith_runtime_test.
# This may be replaced when dependencies are built.
