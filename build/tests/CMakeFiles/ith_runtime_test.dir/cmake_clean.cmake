file(REMOVE_RECURSE
  "CMakeFiles/ith_runtime_test.dir/runtime/icache_test.cpp.o"
  "CMakeFiles/ith_runtime_test.dir/runtime/icache_test.cpp.o.d"
  "CMakeFiles/ith_runtime_test.dir/runtime/interpreter_test.cpp.o"
  "CMakeFiles/ith_runtime_test.dir/runtime/interpreter_test.cpp.o.d"
  "CMakeFiles/ith_runtime_test.dir/runtime/machine_test.cpp.o"
  "CMakeFiles/ith_runtime_test.dir/runtime/machine_test.cpp.o.d"
  "CMakeFiles/ith_runtime_test.dir/runtime/opcode_matrix_test.cpp.o"
  "CMakeFiles/ith_runtime_test.dir/runtime/opcode_matrix_test.cpp.o.d"
  "CMakeFiles/ith_runtime_test.dir/runtime/osr_test.cpp.o"
  "CMakeFiles/ith_runtime_test.dir/runtime/osr_test.cpp.o.d"
  "ith_runtime_test"
  "ith_runtime_test.pdb"
  "ith_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
