# Empty compiler generated dependencies file for ith_opt_test.
# This may be replaced when dependencies are built.
