file(REMOVE_RECURSE
  "CMakeFiles/ith_opt_test.dir/opt/extra_passes_test.cpp.o"
  "CMakeFiles/ith_opt_test.dir/opt/extra_passes_test.cpp.o.d"
  "CMakeFiles/ith_opt_test.dir/opt/inliner_test.cpp.o"
  "CMakeFiles/ith_opt_test.dir/opt/inliner_test.cpp.o.d"
  "CMakeFiles/ith_opt_test.dir/opt/optimizer_test.cpp.o"
  "CMakeFiles/ith_opt_test.dir/opt/optimizer_test.cpp.o.d"
  "CMakeFiles/ith_opt_test.dir/opt/pass_equivalence_test.cpp.o"
  "CMakeFiles/ith_opt_test.dir/opt/pass_equivalence_test.cpp.o.d"
  "CMakeFiles/ith_opt_test.dir/opt/passes_test.cpp.o"
  "CMakeFiles/ith_opt_test.dir/opt/passes_test.cpp.o.d"
  "ith_opt_test"
  "ith_opt_test.pdb"
  "ith_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
