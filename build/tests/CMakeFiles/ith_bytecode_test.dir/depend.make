# Empty dependencies file for ith_bytecode_test.
# This may be replaced when dependencies are built.
