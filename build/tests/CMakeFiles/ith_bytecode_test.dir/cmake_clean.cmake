file(REMOVE_RECURSE
  "CMakeFiles/ith_bytecode_test.dir/bytecode/analysis_test.cpp.o"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/analysis_test.cpp.o.d"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/binary_test.cpp.o"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/binary_test.cpp.o.d"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/bytecode_test.cpp.o"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/bytecode_test.cpp.o.d"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/serializer_test.cpp.o"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/serializer_test.cpp.o.d"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/verifier_test.cpp.o"
  "CMakeFiles/ith_bytecode_test.dir/bytecode/verifier_test.cpp.o.d"
  "ith_bytecode_test"
  "ith_bytecode_test.pdb"
  "ith_bytecode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_bytecode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
