file(REMOVE_RECURSE
  "CMakeFiles/ith_vm_test.dir/vm/vm_test.cpp.o"
  "CMakeFiles/ith_vm_test.dir/vm/vm_test.cpp.o.d"
  "ith_vm_test"
  "ith_vm_test.pdb"
  "ith_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
