# Empty dependencies file for ith_vm_test.
# This may be replaced when dependencies are built.
