# Empty dependencies file for ith_ga_test.
# This may be replaced when dependencies are built.
