file(REMOVE_RECURSE
  "CMakeFiles/ith_ga_test.dir/ga/ga_test.cpp.o"
  "CMakeFiles/ith_ga_test.dir/ga/ga_test.cpp.o.d"
  "ith_ga_test"
  "ith_ga_test.pdb"
  "ith_ga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_ga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
