file(REMOVE_RECURSE
  "CMakeFiles/ith_tuner_test.dir/tuner/tuner_test.cpp.o"
  "CMakeFiles/ith_tuner_test.dir/tuner/tuner_test.cpp.o.d"
  "ith_tuner_test"
  "ith_tuner_test.pdb"
  "ith_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
