# Empty compiler generated dependencies file for ith_tuner_test.
# This may be replaced when dependencies are built.
