file(REMOVE_RECURSE
  "CMakeFiles/ith_workloads_test.dir/workloads/workloads_test.cpp.o"
  "CMakeFiles/ith_workloads_test.dir/workloads/workloads_test.cpp.o.d"
  "ith_workloads_test"
  "ith_workloads_test.pdb"
  "ith_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
