# Empty dependencies file for ith_workloads_test.
# This may be replaced when dependencies are built.
