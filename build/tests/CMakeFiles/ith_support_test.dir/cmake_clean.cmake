file(REMOVE_RECURSE
  "CMakeFiles/ith_support_test.dir/support/misc_test.cpp.o"
  "CMakeFiles/ith_support_test.dir/support/misc_test.cpp.o.d"
  "CMakeFiles/ith_support_test.dir/support/rng_test.cpp.o"
  "CMakeFiles/ith_support_test.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/ith_support_test.dir/support/statistics_test.cpp.o"
  "CMakeFiles/ith_support_test.dir/support/statistics_test.cpp.o.d"
  "ith_support_test"
  "ith_support_test.pdb"
  "ith_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
