# Empty compiler generated dependencies file for ith_support_test.
# This may be replaced when dependencies are built.
