# Empty compiler generated dependencies file for ith_heuristics_test.
# This may be replaced when dependencies are built.
