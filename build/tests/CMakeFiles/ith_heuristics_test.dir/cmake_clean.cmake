file(REMOVE_RECURSE
  "CMakeFiles/ith_heuristics_test.dir/heuristics/heuristics_test.cpp.o"
  "CMakeFiles/ith_heuristics_test.dir/heuristics/heuristics_test.cpp.o.d"
  "CMakeFiles/ith_heuristics_test.dir/heuristics/profile_directed_test.cpp.o"
  "CMakeFiles/ith_heuristics_test.dir/heuristics/profile_directed_test.cpp.o.d"
  "ith_heuristics_test"
  "ith_heuristics_test.pdb"
  "ith_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
