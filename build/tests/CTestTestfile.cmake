# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ith_support_test[1]_include.cmake")
include("/root/repo/build/tests/ith_bytecode_test[1]_include.cmake")
include("/root/repo/build/tests/ith_heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/ith_opt_test[1]_include.cmake")
include("/root/repo/build/tests/ith_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/ith_vm_test[1]_include.cmake")
include("/root/repo/build/tests/ith_workloads_test[1]_include.cmake")
include("/root/repo/build/tests/ith_ga_test[1]_include.cmake")
include("/root/repo/build/tests/ith_tuner_test[1]_include.cmake")
include("/root/repo/build/tests/ith_integration_test[1]_include.cmake")
