# Empty dependencies file for fig6_optbal_x86.
# This may be replaced when dependencies are built.
