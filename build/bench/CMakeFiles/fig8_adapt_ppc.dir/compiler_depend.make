# Empty compiler generated dependencies file for fig8_adapt_ppc.
# This may be replaced when dependencies are built.
