file(REMOVE_RECURSE
  "CMakeFiles/fig8_adapt_ppc.dir/fig8_adapt_ppc.cpp.o"
  "CMakeFiles/fig8_adapt_ppc.dir/fig8_adapt_ppc.cpp.o.d"
  "fig8_adapt_ppc"
  "fig8_adapt_ppc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_adapt_ppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
