
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_adapt_ppc.cpp" "bench/CMakeFiles/fig8_adapt_ppc.dir/fig8_adapt_ppc.cpp.o" "gcc" "bench/CMakeFiles/fig8_adapt_ppc.dir/fig8_adapt_ppc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ith_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/ith_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/ith_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ith_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ith_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ith_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/ith_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ith_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/ith_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ith_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
