file(REMOVE_RECURSE
  "CMakeFiles/fig5_adapt_x86.dir/fig5_adapt_x86.cpp.o"
  "CMakeFiles/fig5_adapt_x86.dir/fig5_adapt_x86.cpp.o.d"
  "fig5_adapt_x86"
  "fig5_adapt_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_adapt_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
