# Empty dependencies file for fig5_adapt_x86.
# This may be replaced when dependencies are built.
