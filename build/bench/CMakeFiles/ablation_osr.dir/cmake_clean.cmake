file(REMOVE_RECURSE
  "CMakeFiles/ablation_osr.dir/ablation_osr.cpp.o"
  "CMakeFiles/ablation_osr.dir/ablation_osr.cpp.o.d"
  "ablation_osr"
  "ablation_osr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_osr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
