# Empty compiler generated dependencies file for ablation_osr.
# This may be replaced when dependencies are built.
