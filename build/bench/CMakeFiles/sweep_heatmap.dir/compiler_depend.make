# Empty compiler generated dependencies file for sweep_heatmap.
# This may be replaced when dependencies are built.
