file(REMOVE_RECURSE
  "CMakeFiles/sweep_heatmap.dir/sweep_heatmap.cpp.o"
  "CMakeFiles/sweep_heatmap.dir/sweep_heatmap.cpp.o.d"
  "sweep_heatmap"
  "sweep_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
