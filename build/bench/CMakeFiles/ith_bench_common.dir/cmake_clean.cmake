file(REMOVE_RECURSE
  "../lib/libith_bench_common.a"
  "../lib/libith_bench_common.pdb"
  "CMakeFiles/ith_bench_common.dir/common.cpp.o"
  "CMakeFiles/ith_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ith_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
