file(REMOVE_RECURSE
  "../lib/libith_bench_common.a"
)
