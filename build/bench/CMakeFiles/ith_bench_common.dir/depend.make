# Empty dependencies file for ith_bench_common.
# This may be replaced when dependencies are built.
