# Empty dependencies file for ablation_cross_arch.
# This may be replaced when dependencies are built.
