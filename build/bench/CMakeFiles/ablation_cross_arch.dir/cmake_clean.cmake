file(REMOVE_RECURSE
  "CMakeFiles/ablation_cross_arch.dir/ablation_cross_arch.cpp.o"
  "CMakeFiles/ablation_cross_arch.dir/ablation_cross_arch.cpp.o.d"
  "ablation_cross_arch"
  "ablation_cross_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cross_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
