# Empty dependencies file for table4_tuned_params.
# This may be replaced when dependencies are built.
