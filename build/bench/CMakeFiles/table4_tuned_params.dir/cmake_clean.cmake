file(REMOVE_RECURSE
  "CMakeFiles/table4_tuned_params.dir/table4_tuned_params.cpp.o"
  "CMakeFiles/table4_tuned_params.dir/table4_tuned_params.cpp.o.d"
  "table4_tuned_params"
  "table4_tuned_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_tuned_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
