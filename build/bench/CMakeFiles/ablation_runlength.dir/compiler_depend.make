# Empty compiler generated dependencies file for ablation_runlength.
# This may be replaced when dependencies are built.
