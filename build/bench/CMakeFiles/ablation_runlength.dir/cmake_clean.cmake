file(REMOVE_RECURSE
  "CMakeFiles/ablation_runlength.dir/ablation_runlength.cpp.o"
  "CMakeFiles/ablation_runlength.dir/ablation_runlength.cpp.o.d"
  "ablation_runlength"
  "ablation_runlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
