# Empty compiler generated dependencies file for fig1_inlining_impact.
# This may be replaced when dependencies are built.
