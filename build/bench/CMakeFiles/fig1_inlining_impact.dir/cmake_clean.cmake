file(REMOVE_RECURSE
  "CMakeFiles/fig1_inlining_impact.dir/fig1_inlining_impact.cpp.o"
  "CMakeFiles/fig1_inlining_impact.dir/fig1_inlining_impact.cpp.o.d"
  "fig1_inlining_impact"
  "fig1_inlining_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_inlining_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
