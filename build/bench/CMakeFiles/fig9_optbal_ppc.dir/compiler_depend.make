# Empty compiler generated dependencies file for fig9_optbal_ppc.
# This may be replaced when dependencies are built.
