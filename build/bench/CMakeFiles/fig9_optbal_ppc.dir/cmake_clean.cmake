file(REMOVE_RECURSE
  "CMakeFiles/fig9_optbal_ppc.dir/fig9_optbal_ppc.cpp.o"
  "CMakeFiles/fig9_optbal_ppc.dir/fig9_optbal_ppc.cpp.o.d"
  "fig9_optbal_ppc"
  "fig9_optbal_ppc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_optbal_ppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
