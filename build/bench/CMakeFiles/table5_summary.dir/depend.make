# Empty dependencies file for table5_summary.
# This may be replaced when dependencies are built.
