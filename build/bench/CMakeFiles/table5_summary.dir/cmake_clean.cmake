file(REMOVE_RECURSE
  "CMakeFiles/table5_summary.dir/table5_summary.cpp.o"
  "CMakeFiles/table5_summary.dir/table5_summary.cpp.o.d"
  "table5_summary"
  "table5_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
