# Empty dependencies file for fig7_opttot_x86.
# This may be replaced when dependencies are built.
