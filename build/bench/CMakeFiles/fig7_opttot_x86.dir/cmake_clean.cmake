file(REMOVE_RECURSE
  "CMakeFiles/fig7_opttot_x86.dir/fig7_opttot_x86.cpp.o"
  "CMakeFiles/fig7_opttot_x86.dir/fig7_opttot_x86.cpp.o.d"
  "fig7_opttot_x86"
  "fig7_opttot_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_opttot_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
