# Empty dependencies file for fig2_depth_sweep.
# This may be replaced when dependencies are built.
