file(REMOVE_RECURSE
  "CMakeFiles/fig10_per_program.dir/fig10_per_program.cpp.o"
  "CMakeFiles/fig10_per_program.dir/fig10_per_program.cpp.o.d"
  "fig10_per_program"
  "fig10_per_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_per_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
